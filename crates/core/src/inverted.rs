//! The inverted database representation (§IV-B) with exact
//! description-length bookkeeping and the merge operation (§IV-E).
//!
//! A row is a triple `(leafset SL, coreset Sc, positions)`: the vertices
//! where every value of `Sc` occurs and every value of `SL` occurs on a
//! neighbour *jointly* (for merged leafsets, positions are intersections
//! of the parents' positions, per §IV-E).
//!
//! # Description length
//!
//! The maintained total is
//!
//! ```text
//! L(M, I) = L(CTc) + Σ_rows [ ST(SL) + Lc(Sc) ] + L(I|M)
//! L(I|M)  = Σ_j c_j·log2 c_j − Σ_rows fL·log2 fL          (Eq. 8)
//! ```
//!
//! where `ST(SL)` is the standard-code-table cost of materialising the
//! leafset, `Lc(Sc)` the coreset pointer code, and `c_j = Σ fL` per
//! coreset. Following the paper's own simplification ("the cost increase
//! of the new pattern's leafset in the code table … obtained through the
//! standard code table ST"), the `Code_L` column itself is priced on the
//! data side only (its per-row length `−log2(fL/fc)` is what Eq. 8 sums),
//! not double-counted in the model.

use std::collections::HashMap;

use cspm_graph::{AttrId, AttributedGraph, VertexId};
use cspm_itemset::{krimp, slim, KrimpConfig, SlimConfig, TransactionDb};
use cspm_mdl::{xlog2x, StandardCodeTable};

use crate::config::{CoresetMode, GainPolicy};
use crate::positions::{PostingPolicy, PostingStore, PostingView, RowId};

/// Index into the coreset registry.
pub type CoresetId = u32;
/// Index into the leafset registry.
pub type LeafsetId = u32;

/// A coreset `Sc`: attribute values plus its `CT_c` entry.
#[derive(Debug, Clone)]
pub struct Coreset {
    /// Sorted attribute values.
    pub items: Vec<AttrId>,
    /// `CT_c` code length (pointer cost from `CT_L` rows).
    pub code_len: f64,
    /// Vertices where the coreset occurs (its mapping-table positions).
    pub positions: Vec<VertexId>,
}

/// Outcome of a merge operation, consumed by CSPM-Partial's update step.
#[derive(Debug, Clone)]
pub struct MergeOutcome {
    /// Id of the (possibly pre-existing) union leafset.
    pub new_leafset: LeafsetId,
    /// Whether `x` vanished from every coreset (totally merged).
    pub x_removed: bool,
    /// Whether `y` vanished from every coreset.
    pub y_removed: bool,
    /// Coresets where rows actually changed.
    pub touched_coresets: Vec<CoresetId>,
    /// Exact change of the maintained total DL (negative = improvement).
    pub dl_delta: f64,
    /// Whether any row pair was merged at all.
    pub merged_any: bool,
}

/// The inverted database `I` plus the model bookkeeping (`CT_c`, `CT_L`).
#[derive(Debug, Clone)]
pub struct InvertedDb {
    st: StandardCodeTable,
    coresets: Vec<Coreset>,
    leafsets: Vec<Vec<AttrId>>,
    leafset_index: HashMap<Vec<AttrId>, LeafsetId>,
    /// Flat arena holding every row's sorted positions.
    store: PostingStore,
    /// `rows[e]`: leafset → posting-list row, for coreset `e`.
    rows: Vec<HashMap<LeafsetId, RowId>>,
    /// Reusable intersection buffer for [`Self::merge`].
    scratch_common: Vec<VertexId>,
    /// Reverse index: coresets in which each leafset currently has a row.
    leafset_coresets: Vec<Vec<CoresetId>>,
    /// `c_j`: Σ fL over the rows of each coreset.
    coreset_freq: Vec<u64>,
    /// Number of leafsets that still have at least one row.
    live_leafsets: usize,
    /// How the coresets were formed (decides whether the database can
    /// be patched incrementally; see [`Self::apply_delta`]).
    mode: CoresetMode,
    /// Whether the database is still in its post-build state (no merge
    /// applied). Only pristine databases can absorb graph deltas.
    pristine: bool,
    // --- DL bookkeeping ---
    term1: f64,
    term2: f64,
    material_cost: f64,
    ctc_cost: f64,
    gain_policy: GainPolicy,
}

/// What [`InvertedDb::apply_delta`] did, for session diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PatchStats {
    /// Coresets created for attribute values the delta introduced.
    pub new_coresets: usize,
    /// Rows created for `(coreset, leaf)` pairs that did not co-occur
    /// before the delta.
    pub rows_added: usize,
    /// Rows whose position set emptied out and were released back to
    /// the posting free-list.
    pub rows_removed: usize,
    /// Positions inserted into rows (including the initial position of
    /// every added row, and dirty positions re-derived in place).
    pub positions_added: usize,
    /// Dirty positions cleared out of retained rows before re-derive
    /// (a re-qualified center counts once here and once above).
    pub positions_removed: usize,
}

/// Why a database could not absorb a graph delta in place. The caller
/// falls back to a full rebuild — the result is identical, just cold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatchError {
    /// A merge has already been applied; only pristine (post-build)
    /// databases can be patched.
    NotPristine,
    /// Multi-value coreset modes (Krimp/SLIM) mine their coresets from
    /// the global attribute distribution — a delta invalidates them
    /// wholesale, so there is nothing to patch.
    UnsupportedCoresetMode,
    /// The database's coreset numbering is not canonical (the build
    /// skipped a zero-frequency attribute value, so coreset ids and
    /// attribute ids diverge from this coreset on) — positions cannot
    /// be patched by attribute id.
    NonCanonicalCoresets(CoresetId),
    /// An attribute value beyond the database's coresets occurs on no
    /// vertex of the grown graph; a fresh build would skip it, so a
    /// patch appending it would desynchronise the numbering.
    EmptyAttribute(AttrId),
    /// A removal-carrying delta drove an existing attribute value's
    /// frequency to zero. A fresh build of the shrunk graph would skip
    /// its coreset and renumber everything after it — bit-identity
    /// cannot be patched cheaply, so the caller rebuilds cold.
    VanishedAttribute(AttrId),
}

impl std::fmt::Display for PatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NotPristine => write!(f, "database already has merges applied"),
            Self::UnsupportedCoresetMode => {
                write!(f, "multi-value coresets cannot be patched incrementally")
            }
            Self::NonCanonicalCoresets(e) => {
                write!(
                    f,
                    "coreset {e} is not numbered by its attribute id (the build \
                     skipped a zero-frequency attribute value)"
                )
            }
            Self::EmptyAttribute(a) => {
                write!(
                    f,
                    "attribute value {a} occurs on no vertex of the grown graph"
                )
            }
            Self::VanishedAttribute(a) => {
                write!(
                    f,
                    "attribute value {a} no longer occurs on any vertex; a fresh \
                     build would renumber the coresets after it"
                )
            }
        }
    }
}

impl std::error::Error for PatchError {}

/// Why [`InvertedDb::from_pristine_rows`] rejected a serialized row
/// set. Restoration is fed from checksummed snapshot files, so this
/// only trips on data that was mangled *before* being checksummed (or
/// written by something other than the store); callers treat it like
/// any corrupt snapshot and rebuild cold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestoreError {
    /// Which structural invariant the rows violated.
    pub message: &'static str,
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "serialized rows are not a valid database: {}",
            self.message
        )
    }
}

impl std::error::Error for RestoreError {}

impl InvertedDb {
    /// Builds the inverted database from an attributed graph (Step 1 and
    /// Step 2 of Algorithm 1), with the default adaptive posting-row
    /// representation.
    pub fn build(g: &AttributedGraph, mode: CoresetMode, gain_policy: GainPolicy) -> Self {
        Self::build_with_posting(g, mode, gain_policy, PostingPolicy::default())
    }

    /// [`Self::build`] with an explicit posting-row representation
    /// policy. [`PostingPolicy::SparseOnly`] pins the reference layout;
    /// the equivalence tests and the bench backends use it to prove the
    /// adaptive store mines bit-identically.
    pub fn build_with_posting(
        g: &AttributedGraph,
        mode: CoresetMode,
        gain_policy: GainPolicy,
        posting: PostingPolicy,
    ) -> Self {
        let mapping = g.mapping_table();
        let st = StandardCodeTable::from_counts(
            (0..g.attr_count())
                .map(|a| mapping.frequency(a as AttrId) as u64)
                .collect(),
        );
        // Step 1: determine the coresets and their occurrences.
        let coreset_occurrences: Vec<(Vec<AttrId>, f64, Vec<VertexId>)> = match mode {
            CoresetMode::SingleValue => (0..g.attr_count() as AttrId)
                .filter(|&a| mapping.frequency(a) > 0)
                .map(|a| {
                    (
                        vec![a],
                        st.code_len(a as usize),
                        mapping.positions(a).to_vec(),
                    )
                })
                .collect(),
            CoresetMode::Krimp { min_support } => {
                let db = vertex_transactions(g);
                let res = krimp(
                    &db,
                    KrimpConfig {
                        min_support,
                        prune: true,
                        closed_candidates: true,
                    },
                );
                coresets_from_code_table(&res.code_table, &db)
            }
            CoresetMode::Slim => {
                let db = vertex_transactions(g);
                let res = slim(&db, SlimConfig::default());
                coresets_from_code_table(&res.code_table, &db)
            }
        };

        let mut this = Self {
            st,
            coresets: Vec::new(),
            leafsets: Vec::new(),
            leafset_index: HashMap::new(),
            // Initial rows materialise roughly one position per
            // (edge endpoint, leaf value); the label-pair count is a
            // cheap, same-order lower bound to pre-size the arena.
            store: PostingStore::with_capacity_and_policy(g.label_pair_count(), posting),
            rows: Vec::new(),
            scratch_common: Vec::new(),
            leafset_coresets: Vec::new(),
            coreset_freq: Vec::new(),
            live_leafsets: 0,
            mode,
            pristine: true,
            term1: 0.0,
            term2: 0.0,
            material_cost: 0.0,
            ctc_cost: 0.0,
            gain_policy,
        };

        for (items, code_len, positions) in coreset_occurrences {
            this.coresets.push(Coreset {
                items,
                code_len,
                positions,
            });
            this.rows.push(HashMap::new());
            this.coreset_freq.push(0);
        }

        // Canonical leafset numbering: every attribute value gets its
        // singleton leafset id upfront, in attribute-id order, so
        // `lid(singleton {a}) == a` regardless of which coreset happens
        // to encounter the leaf first. This is what makes an
        // incrementally patched database (apply_delta) numbered
        // identically to a fresh build of the grown graph — and leafset
        // ids are tie-breakers in the candidate scheduler, so identical
        // numbering is required for bit-identical mining.
        for a in 0..g.attr_count() as AttrId {
            this.intern_leafset(vec![a]);
        }

        // Step 2: initial rows — one per (coreset occurrence, leaf value).
        // Gather, per coreset, the positions of each single leaf value.
        let mut scratch: HashMap<AttrId, Vec<VertexId>> = HashMap::new();
        for e in 0..this.coresets.len() {
            scratch.clear();
            let positions = std::mem::take(&mut this.coresets[e].positions);
            for &v in &positions {
                for &u in g.neighbors(v) {
                    for &leaf in g.labels(u) {
                        let entry = scratch.entry(leaf).or_default();
                        if entry.last() != Some(&v) {
                            entry.push(v);
                        }
                    }
                }
            }
            this.coresets[e].positions = positions;
            let mut leaves: Vec<(AttrId, Vec<VertexId>)> = scratch.drain().collect();
            leaves.sort_by_key(|(a, _)| *a);
            for (leaf, pos) in leaves {
                let lid = this.intern_leafset(vec![leaf]);
                this.add_row(e as CoresetId, lid, &pos);
            }
        }
        // Replace the per-row accumulation with one canonical pass, so
        // the pristine DL terms are a pure function of the final rows —
        // a patched database (apply_delta) recomputes them the same
        // way and lands on bit-identical floats.
        this.recompute_dl_terms();
        this
    }

    /// Recomputes the four DL bookkeeping terms from the current rows
    /// in one canonical order (coresets ascending, leafset ids
    /// ascending within each). Incremental accumulation — whether from
    /// [`Self::build`]'s row insertion or from a patch — can land on
    /// different last-ulp floats depending on operation order; routing
    /// both through this pass makes the pristine state's terms exactly
    /// reproducible.
    fn recompute_dl_terms(&mut self) {
        let (mut ctc, mut t1, mut t2, mut material) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        let mut rows: Vec<(LeafsetId, RowId)> = Vec::new();
        for (e, c) in self.coresets.iter().enumerate() {
            ctc += self.st.set_cost(c.items.iter().map(|&a| a as usize)) + c.code_len;
            t1 += xlog2x(self.coreset_freq[e] as f64);
            rows.clear();
            rows.extend(self.rows[e].iter().map(|(&lid, &row)| (lid, row)));
            rows.sort_unstable_by_key(|&(lid, _)| lid);
            for &(lid, row) in &rows {
                t2 += xlog2x(self.store.len(row) as f64);
                material += self
                    .st
                    .set_cost(self.leafsets[lid as usize].iter().map(|&a| a as usize))
                    + c.code_len;
            }
        }
        self.ctc_cost = ctc;
        self.term1 = t1;
        self.term2 = t2;
        self.material_cost = material;
    }

    /// Patches a **pristine** single-value-coreset database so it
    /// matches what [`Self::build`] would produce for `g` — without
    /// re-scanning the stars of unchanged vertices. `g` is the
    /// *evolved* graph (the base this database was built from, plus a
    /// [`cspm_graph::dynamic::GraphDelta`] — additions, removals and
    /// label changes alike), and `dirty` is the delta's sorted
    /// dirty-center set: exactly the vertices whose rows may have
    /// changed.
    ///
    /// The patch is uniform over additions and churn: every retained
    /// row first has its dirty positions cleared
    /// ([`PostingStore::difference`]), then the dirty centers that
    /// *still* qualify in the evolved graph are re-inserted
    /// ([`PostingStore::union_in_place`]). Rows that empty out are
    /// released back to the posting free-list; `(coreset, leaf)` pairs
    /// that first co-occur now get fresh rows.
    ///
    /// The patched database is logically identical to a fresh build —
    /// same coreset and leafset numbering, same row contents, same
    /// frequencies, bit-identical DL terms — so the merge loop takes
    /// the exact same greedy path afterwards. Only the posting arena's
    /// physical layout differs (patched rows relocate inside the
    /// retained arena; see
    /// [`PostingStore::fragmentation`](crate::PostingStore::fragmentation)).
    ///
    /// Cost: a star scan of the dirty centers only, plus linear
    /// refresh passes over existing state — the mapping table and
    /// standard code table (`O(|λ| + |A|)`, attribute frequencies
    /// change globally), one dirty-overlap probe per retained row, and
    /// the canonical DL-term recomputation (`O(rows)`). Still linear
    /// in the graph, but a large constant factor cheaper than
    /// [`Self::build`]'s full star scan (~8× on pokec-Small: 21 ms vs
    /// 163 ms).
    pub fn apply_delta(
        &mut self,
        g: &AttributedGraph,
        dirty: &[VertexId],
    ) -> Result<PatchStats, PatchError> {
        if !self.pristine {
            return Err(PatchError::NotPristine);
        }
        if self.mode != CoresetMode::SingleValue {
            return Err(PatchError::UnsupportedCoresetMode);
        }
        // Single-value builds skip zero-frequency attribute values, so
        // a base graph whose interner carried an unused value (possible
        // through `AttributedGraph::from_edge_list` with a hand-built
        // table) desynchronises the coreset-id ↔ attr-id numbering this
        // patch relies on. Check the *retained database* directly —
        // checking the grown graph instead would miss the case where
        // the delta itself attaches the formerly unused value.
        if let Some(e) =
            (0..self.coresets.len()).find(|&e| self.coresets[e].items.as_slice() != [e as AttrId])
        {
            return Err(PatchError::NonCanonicalCoresets(e as CoresetId));
        }
        let mapping = g.mapping_table();
        // A removal that wiped out an existing value's last occurrence
        // means a fresh build would skip its coreset and renumber the
        // rest — detect it up front and let the caller rebuild cold.
        if let Some(e) = (0..self.coresets.len() as AttrId).find(|&e| mapping.frequency(e) == 0) {
            return Err(PatchError::VanishedAttribute(e));
        }
        // Values past the existing coresets must all occur, or a fresh
        // build would skip them and number later coresets differently.
        // Delta-interned values always arrive attached to a vertex;
        // this only trips on a base interner that carried an unused
        // value *after* every used one (numbering check above can't
        // see those).
        if let Some(a) = (self.coresets.len() as AttrId..g.attr_count() as AttrId)
            .find(|&a| mapping.frequency(a) == 0)
        {
            return Err(PatchError::EmptyAttribute(a));
        }
        let mut stats = PatchStats::default();

        // Attribute frequencies changed globally, so the standard code
        // table — and with it every coreset's CT_c code — must be
        // refreshed wholesale (cheap: O(|A|)).
        self.st = StandardCodeTable::from_counts(
            (0..g.attr_count())
                .map(|a| mapping.frequency(a as AttrId) as u64)
                .collect(),
        );
        for (e, c) in self.coresets.iter_mut().enumerate() {
            c.code_len = self.st.code_len(e);
            c.positions = mapping.positions(e as AttrId).to_vec();
        }
        // New attribute values append new coresets and new singleton
        // leafsets, in attribute-id order — exactly the numbering a
        // fresh build would assign.
        for a in self.coresets.len() as AttrId..g.attr_count() as AttrId {
            self.coresets.push(Coreset {
                items: vec![a],
                code_len: self.st.code_len(a as usize),
                positions: mapping.positions(a).to_vec(),
            });
            self.rows.push(HashMap::new());
            self.coreset_freq.push(0);
            let lid = self.intern_leafset(vec![a]);
            debug_assert_eq!(lid, a, "pristine numbering must stay canonical");
            stats.new_coresets += 1;
        }

        // Re-derive the rows of every dirty center against the evolved
        // graph. `desired` holds, per (coreset, leaf) row, exactly the
        // dirty centers that belong to that row *now* — memberships a
        // removal retracted simply never show up. Batching per row
        // means one difference pass plus one union pass (and at most
        // one relocation) per touched row, where per-position edits
        // would re-copy the row k times and leave abandoned spans.
        let mut desired: HashMap<(AttrId, AttrId), Vec<VertexId>> = HashMap::new();
        let mut leaves: Vec<AttrId> = Vec::new();
        for &v in dirty {
            leaves.clear();
            for &u in g.neighbors(v) {
                leaves.extend_from_slice(g.labels(u));
            }
            leaves.sort_unstable();
            leaves.dedup();
            for &a in g.labels(v) {
                for &leaf in &leaves {
                    // `dirty` is sorted, so each row's batch stays
                    // sorted by construction.
                    desired.entry((a, leaf)).or_default().push(v);
                }
            }
        }

        // Pass 1 — retained rows: clear every dirty position, then put
        // back the ones that still qualify. A row no dirty center ever
        // touched has zero overlap and no batch, and is skipped
        // untouched. Rows that empty out go back to the free-list (a
        // fresh build would not have them).
        for e in 0..self.coresets.len() {
            let mut retained: Vec<(LeafsetId, RowId)> =
                self.rows[e].iter().map(|(&lid, &row)| (lid, row)).collect();
            retained.sort_unstable_by_key(|&(lid, _)| lid);
            for (lid, row) in retained {
                let batch = desired.remove(&(e as AttrId, lid));
                let overlap = self.store.intersect_count_slice(row, dirty);
                if overlap == 0 && batch.is_none() {
                    continue;
                }
                let old_len = self.store.len(row);
                let mut new_len = old_len;
                if overlap > 0 {
                    new_len = self.store.difference(row, dirty);
                    stats.positions_removed += overlap;
                }
                if let Some(vs) = &batch {
                    new_len = self.store.union_in_place(row, vs);
                    stats.positions_added += new_len - (old_len - overlap);
                }
                if new_len >= old_len {
                    self.coreset_freq[e] += (new_len - old_len) as u64;
                } else {
                    self.coreset_freq[e] -= (old_len - new_len) as u64;
                }
                if new_len == 0 {
                    self.rows[e].remove(&lid);
                    self.store.release(row);
                    self.unlink(lid, e as CoresetId);
                    stats.rows_removed += 1;
                }
            }
        }

        // Pass 2 — leftover batches are (coreset, leaf) pairs that
        // first co-occur in the evolved graph: fresh rows, through the
        // same insertion path as the build so patched and fresh
        // databases share one set of row invariants.
        let mut fresh: Vec<((AttrId, AttrId), Vec<VertexId>)> = desired.into_iter().collect();
        fresh.sort_unstable_by_key(|&(key, _)| key);
        for ((a, leaf), vs) in fresh {
            self.add_row(a, leaf, &vs);
            stats.rows_added += 1;
            stats.positions_added += vs.len();
        }

        self.recompute_dl_terms();
        Ok(stats)
    }

    /// Rebuilds a **pristine single-value** database from its
    /// serialized rows — the warm half of a `cspm-store` snapshot
    /// restore. The cheap metadata (mapping table, standard code table,
    /// coresets, canonical singleton leafsets) is re-derived from `g`
    /// exactly as [`Self::build`] derives it; only the expensive star
    /// scan is replaced by inserting the given `(coreset, leafset,
    /// positions)` rows verbatim. The restore ends in the same
    /// canonical `recompute_dl_terms` pass as a build, so a
    /// database restored from a fresh build's [`Self::iter_rows`]
    /// output is logically identical to that build — same numbering,
    /// same frequencies, bit-identical DL terms — and mining it takes
    /// the exact same greedy path.
    ///
    /// Rows must come from a pristine [`CoresetMode::SingleValue`]
    /// database of an equal graph (pristine single-value rows only ever
    /// reference singleton leafsets, so `leafset == attribute id`).
    /// Every structural invariant is checked — in-range ids, sorted
    /// non-empty positions, no duplicate rows — and violations return a
    /// typed [`RestoreError`], never a panic: the caller falls back to
    /// a cold [`Self::build`].
    pub fn from_pristine_rows<'a, I>(
        g: &AttributedGraph,
        gain_policy: GainPolicy,
        rows: I,
    ) -> Result<Self, RestoreError>
    where
        I: IntoIterator<Item = (CoresetId, LeafsetId, &'a [VertexId])>,
    {
        let mapping = g.mapping_table();
        let st = StandardCodeTable::from_counts(
            (0..g.attr_count())
                .map(|a| mapping.frequency(a as AttrId) as u64)
                .collect(),
        );
        let mut this = Self {
            st,
            coresets: Vec::new(),
            leafsets: Vec::new(),
            leafset_index: HashMap::new(),
            store: PostingStore::with_capacity(g.label_pair_count()),
            rows: Vec::new(),
            scratch_common: Vec::new(),
            leafset_coresets: Vec::new(),
            coreset_freq: Vec::new(),
            live_leafsets: 0,
            mode: CoresetMode::SingleValue,
            pristine: true,
            term1: 0.0,
            term2: 0.0,
            material_cost: 0.0,
            ctc_cost: 0.0,
            gain_policy,
        };
        for a in (0..g.attr_count() as AttrId).filter(|&a| mapping.frequency(a) > 0) {
            this.coresets.push(Coreset {
                items: vec![a],
                code_len: this.st.code_len(a as usize),
                positions: mapping.positions(a).to_vec(),
            });
            this.rows.push(HashMap::new());
            this.coreset_freq.push(0);
        }
        for a in 0..g.attr_count() as AttrId {
            this.intern_leafset(vec![a]);
        }
        let n = g.vertex_count() as VertexId;
        for (e, lid, positions) in rows {
            if e as usize >= this.coresets.len() {
                return Err(RestoreError {
                    message: "row references unknown coreset",
                });
            }
            if (lid as usize) >= this.leafsets.len() {
                return Err(RestoreError {
                    message: "row references a non-singleton leafset",
                });
            }
            if positions.is_empty() {
                return Err(RestoreError {
                    message: "row has no positions",
                });
            }
            if positions.windows(2).any(|w| w[0] >= w[1]) {
                return Err(RestoreError {
                    message: "row positions are not strictly sorted",
                });
            }
            if *positions.last().expect("non-empty") >= n {
                return Err(RestoreError {
                    message: "row position beyond the graph",
                });
            }
            if this.rows[e as usize].contains_key(&lid) {
                return Err(RestoreError {
                    message: "duplicate row",
                });
            }
            this.add_row(e, lid, positions);
        }
        this.recompute_dl_terms();
        Ok(this)
    }

    /// Whether no merge has been applied since the build (or last
    /// patch) — the state graph deltas can be absorbed into.
    pub fn is_pristine(&self) -> bool {
        self.pristine
    }

    /// Compacts the posting arena in place (see
    /// [`PostingStore::compact`]); row handles and mining state are
    /// unaffected.
    pub fn compact_postings(&mut self) {
        self.store.compact();
    }

    fn intern_leafset(&mut self, items: Vec<AttrId>) -> LeafsetId {
        if let Some(&id) = self.leafset_index.get(&items) {
            return id;
        }
        let id = self.leafsets.len() as LeafsetId;
        self.leafsets.push(items.clone());
        self.leafset_index.insert(items, id);
        self.leafset_coresets.push(Vec::new());
        id
    }

    /// Inserts a brand-new row, updating frequencies and links — but
    /// *not* the DL terms: build-time callers finish with
    /// [`Self::recompute_dl_terms`], the single source of truth for the
    /// pristine terms. Positions must be sorted and non-empty, and the
    /// row must not already exist.
    fn add_row(&mut self, e: CoresetId, lid: LeafsetId, positions: &[VertexId]) {
        debug_assert!(!positions.is_empty());
        debug_assert!(positions.windows(2).all(|w| w[0] < w[1]));
        self.coreset_freq[e as usize] += positions.len() as u64;
        let row = self.store.insert(positions);
        let existed = self.rows[e as usize].insert(lid, row).is_some();
        debug_assert!(!existed, "add_row on existing row");
        let cs = &mut self.leafset_coresets[lid as usize];
        if cs.is_empty() {
            self.live_leafsets += 1;
        }
        // Kept sorted so shared-coreset iteration (the inner loop of
        // every gain and bound evaluation) is a two-pointer merge
        // rather than a quadratic `contains` scan.
        match cs.binary_search(&e) {
            Ok(_) => debug_assert!(false, "coreset already linked"),
            Err(pos) => cs.insert(pos, e),
        }
    }

    fn leafset_st_cost(&self, lid: LeafsetId) -> f64 {
        self.st
            .set_cost(self.leafsets[lid as usize].iter().map(|&a| a as usize))
    }

    /// `L(I|M)` per Eq. 8, in bits.
    pub fn data_cost(&self) -> f64 {
        self.term1 - self.term2
    }

    /// Model cost: `L(CTc)` plus materialisation of all `CT_L` rows.
    pub fn model_cost(&self) -> f64 {
        self.ctc_cost + self.material_cost
    }

    /// Maintained total `L(M, I)`.
    pub fn total_dl(&self) -> f64 {
        self.data_cost() + self.model_cost()
    }

    /// Conditional entropy `H(Y|X)` of the current table (Eq. 7):
    /// `L(I|M) / s` with `s` the total row frequency.
    pub fn conditional_entropy(&self) -> f64 {
        let s: u64 = self.coreset_freq.iter().sum();
        if s == 0 {
            0.0
        } else {
            self.data_cost() / s as f64
        }
    }

    /// The standard code table over attribute values.
    pub fn st(&self) -> &StandardCodeTable {
        &self.st
    }

    /// All coresets (the `CT_c` side).
    pub fn coresets(&self) -> &[Coreset] {
        &self.coresets
    }

    /// Number of coresets `|Sc^M|` (Table II statistic).
    pub fn coreset_count(&self) -> usize {
        self.coresets.len()
    }

    /// Attribute values of a leafset.
    pub fn leafset_items(&self, lid: LeafsetId) -> &[AttrId] {
        &self.leafsets[lid as usize]
    }

    /// Coresets in which `lid` currently has rows.
    pub fn leafset_coresets(&self, lid: LeafsetId) -> &[CoresetId] {
        &self.leafset_coresets[lid as usize]
    }

    /// Whether the leafset still has at least one row.
    pub fn is_live(&self, lid: LeafsetId) -> bool {
        !self.leafset_coresets[lid as usize].is_empty()
    }

    /// Number of live leafsets.
    pub fn live_leafset_count(&self) -> usize {
        self.live_leafsets
    }

    /// Ids of all live leafsets.
    pub fn live_leafsets(&self) -> Vec<LeafsetId> {
        (0..self.leafsets.len() as LeafsetId)
            .filter(|&l| self.is_live(l))
            .collect()
    }

    /// Total number of rows.
    pub fn row_count(&self) -> usize {
        self.rows.iter().map(HashMap::len).sum()
    }

    /// Positions of row `(e, lid)` as owned sorted ids, if present
    /// (bitmap rows decode, so a borrowed slice cannot be returned).
    pub fn row_positions(&self, e: CoresetId, lid: LeafsetId) -> Option<Vec<VertexId>> {
        self.rows[e as usize]
            .get(&lid)
            .map(|&r| self.store.positions(r).into_owned())
    }

    /// The flat posting-list arena backing all rows.
    pub fn posting_store(&self) -> &PostingStore {
        &self.store
    }

    /// Estimated resident bytes of the database: the posting arena plus
    /// the structures that scale with coresets/leafsets (row maps,
    /// coreset position lists, the reverse leafset index). Constant-size
    /// bookkeeping is ignored — this feeds a daemon's eviction budget,
    /// where only graph-proportional terms matter.
    pub fn approx_bytes(&self) -> usize {
        const MAP_ENTRY: usize = 48; // HashMap control + (key, value) slot, amortised
        let coresets: usize = self
            .coresets
            .iter()
            .map(|c| {
                std::mem::size_of_val(c.items.as_slice())
                    + std::mem::size_of_val(c.positions.as_slice())
            })
            .sum();
        let leafsets: usize = self
            .leafsets
            .iter()
            .map(|l| std::mem::size_of_val(l.as_slice()))
            .sum();
        let rows: usize = self.rows.iter().map(|m| m.len() * MAP_ENTRY).sum();
        let index: usize = self
            .leafset_index
            .keys()
            .map(|k| MAP_ENTRY + std::mem::size_of_val(k.as_slice()))
            .sum();
        let reverse: usize = self
            .leafset_coresets
            .iter()
            .map(|v| std::mem::size_of_val(v.as_slice()))
            .sum();
        self.store.approx_bytes() + coresets + leafsets + rows + index + reverse
    }

    /// `c_j` of a coreset: Σ fL of its rows.
    pub fn coreset_freq(&self, e: CoresetId) -> u64 {
        self.coreset_freq[e as usize]
    }

    /// Iterates all rows as `(coreset, leafset, positions)`. Positions
    /// are always **canonical sorted ids**: sparse rows borrow from the
    /// arena, bitmap rows decode on the fly — so snapshots and every
    /// other consumer see one representation-independent format.
    pub fn iter_rows(
        &self,
    ) -> impl Iterator<Item = (CoresetId, LeafsetId, std::borrow::Cow<'_, [VertexId]>)> {
        self.rows.iter().enumerate().flat_map(move |(e, m)| {
            m.iter()
                .map(move |(&l, &r)| (e as CoresetId, l, self.store.positions(r)))
        })
    }

    /// Whether one leafset's values are a subset of the other's. Such
    /// pairs are never merge candidates: their union *is* the superset,
    /// so no new pattern would be created.
    pub fn is_nested_pair(&self, x: LeafsetId, y: LeafsetId) -> bool {
        let (a, b) = (&self.leafsets[x as usize], &self.leafsets[y as usize]);
        let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
        small.iter().all(|i| large.binary_search(i).is_ok())
    }

    /// A read-only scoring handle borrowing this database; see
    /// [`GainView`]. Cheap (two borrows), `Copy`, and safe to hand to
    /// any number of scoped worker threads.
    pub fn gain_view(&self) -> GainView<'_> {
        GainView {
            db: self,
            store: self.store.view(),
        }
    }

    /// Gain `ΔL` of merging leafsets `x` and `y`; see
    /// [`GainView::pair_gain`], to which this delegates.
    pub fn pair_gain(&self, x: LeafsetId, y: LeafsetId) -> f64 {
        self.gain_view().pair_gain(x, y)
    }

    /// Cheap upper bound on [`Self::pair_gain`]; see
    /// [`GainView::pair_gain_upper_bound`], to which this delegates.
    pub fn pair_gain_upper_bound(&self, x: LeafsetId, y: LeafsetId) -> f64 {
        self.gain_view().pair_gain_upper_bound(x, y)
    }

    /// Merges leafsets `x` and `y` (§IV-E): at every shared coreset the
    /// common positions move to a row for `x ∪ y`; empty parents are
    /// dropped. All DL bookkeeping is updated **exactly** (including the
    /// rare case where the union row already exists).
    pub fn merge(&mut self, x: LeafsetId, y: LeafsetId) -> MergeOutcome {
        assert_ne!(x, y, "cannot merge a leafset with itself");
        self.pristine = false;
        let dl_before = self.total_dl();
        let n = self.intern_leafset(union_items(
            &self.leafsets[x as usize],
            &self.leafsets[y as usize],
        ));
        let mut touched = Vec::new();
        let shared: Vec<CoresetId> = shared_sorted(
            &self.leafset_coresets[x as usize],
            &self.leafset_coresets[y as usize],
        );
        // Reusable intersection buffer: steady-state merging allocates
        // nothing — parents shrink in place, unions grow in place while
        // their spans have slack, dead spans are recycled.
        let mut common = std::mem::take(&mut self.scratch_common);
        for e in shared {
            {
                let rx = self.rows[e as usize][&x];
                let ry = self.rows[e as usize][&y];
                self.store.intersect_into(rx, ry, &mut common);
            }
            if common.is_empty() {
                continue;
            }
            touched.push(e);
            let mut fe = self.coreset_freq[e as usize];
            self.term1 -= xlog2x(fe as f64);
            // Shrink (or drop) the parents. Nested unions (n == x or
            // n == y) never reach here: `pair_gain` filters them and the
            // algorithms skip zero-gain pairs, but guard anyway.
            for parent in [x, y] {
                if parent == n {
                    continue;
                }
                let row = *self.rows[e as usize].get(&parent).expect("shared row");
                let old = self.store.len(row) as u64;
                self.term2 -= xlog2x(old as f64);
                let new = self.store.difference(row, &common) as u64;
                fe = fe - old + new;
                if new == 0 {
                    self.rows[e as usize].remove(&parent);
                    self.store.release(row);
                    self.material_cost -=
                        self.leafset_st_cost(parent) + self.coresets[e as usize].code_len;
                    self.unlink(parent, e);
                } else {
                    self.term2 += xlog2x(new as f64);
                }
            }
            // Grow (or create) the union row.
            match self.rows[e as usize].get(&n).copied() {
                Some(row) => {
                    let old = self.store.len(row) as u64;
                    self.term2 -= xlog2x(old as f64);
                    let new = self.store.union_in_place(row, &common) as u64;
                    fe = fe - old + new;
                    self.term2 += xlog2x(new as f64);
                }
                None => {
                    let fl = common.len() as u64;
                    self.term2 += xlog2x(fl as f64);
                    self.material_cost +=
                        self.leafset_st_cost(n) + self.coresets[e as usize].code_len;
                    let row = self.store.insert(&common);
                    self.rows[e as usize].insert(n, row);
                    fe += fl;
                    let cs = &mut self.leafset_coresets[n as usize];
                    if cs.is_empty() {
                        self.live_leafsets += 1;
                    }
                    if let Err(pos) = cs.binary_search(&e) {
                        cs.insert(pos, e);
                    }
                }
            }
            self.term1 += xlog2x(fe as f64);
            self.coreset_freq[e as usize] = fe;
        }
        self.scratch_common = common;
        MergeOutcome {
            new_leafset: n,
            x_removed: !self.is_live(x),
            y_removed: !self.is_live(y),
            merged_any: !touched.is_empty(),
            touched_coresets: touched,
            dl_delta: self.total_dl() - dl_before,
        }
    }

    fn unlink(&mut self, lid: LeafsetId, e: CoresetId) {
        let cs = &mut self.leafset_coresets[lid as usize];
        if let Ok(pos) = cs.binary_search(&e) {
            cs.remove(pos); // ordered remove keeps the list sorted
        }
        if cs.is_empty() {
            self.live_leafsets -= 1;
        }
    }

    /// All unordered candidate pairs of live leafsets sharing at least
    /// one coreset (the only pairs that can have non-zero gain, §V).
    pub fn sharing_pairs(&self) -> Vec<(LeafsetId, LeafsetId)> {
        let mut pairs = std::collections::BTreeSet::new();
        for m in &self.rows {
            let mut ls: Vec<LeafsetId> = m.keys().copied().collect();
            ls.sort_unstable();
            for i in 0..ls.len() {
                for j in i + 1..ls.len() {
                    pairs.insert((ls[i], ls[j]));
                }
            }
        }
        pairs.into_iter().collect()
    }
}

/// Read-only gain scorer over an [`InvertedDb`].
///
/// Candidate scoring is pure: it reads rows, frequencies and code-table
/// costs but never mutates the database. This type makes that contract
/// explicit — it borrows the database immutably (rows through a
/// [`PostingView`] over the shared arena, nothing cloned) and is
/// `Copy + Send + Sync`, so the engine's parallel scorer can give every
/// worker thread its own view of one immutable database between merges.
/// All scoring used by the engine goes through here, in the sequential
/// and the parallel path alike, so gains are bit-identical at any
/// thread count.
#[derive(Debug, Clone, Copy)]
pub struct GainView<'a> {
    db: &'a InvertedDb,
    store: PostingView<'a>,
}

impl GainView<'_> {
    /// Gain `ΔL` of merging leafsets `x` and `y` (Eq. 9 with the case
    /// analysis of Eq. 10–15, all cases unified by the `0·log 0 = 0`
    /// convention), minus the model-cost delta under
    /// [`GainPolicy::Total`]. Positive gain = merging reduces the DL.
    ///
    /// The paper's formulas assume the union leafset produces a *new*
    /// row; when a row for `x ∪ y` already exists under a shared coreset
    /// (possible after earlier merges) the common positions fold into it
    /// instead, and this function computes the exact delta for that case
    /// too — so the returned gain always equals the true DL reduction
    /// and accepted merges are guaranteed to decrease the DL.
    ///
    /// Returns 0 for nested pairs and for pairs that never co-occur.
    pub fn pair_gain(&self, x: LeafsetId, y: LeafsetId) -> f64 {
        if x == y || self.db.is_nested_pair(x, y) {
            return 0.0;
        }
        let p = self.prelude(x, y);
        let mut shared = Vec::new();
        self.collect_shared(x, y, p.union_id, &mut shared);
        self.exact_gain(&p, &shared)
    }

    /// Scores one pair, consulting the Algorithm 2 bound first (under
    /// [`GainPolicy::Total`]; under `DataOnly` the bound provably never
    /// prunes, so it is skipped outright). Returns `None` — without
    /// touching a position list — when the bound shows the gain cannot
    /// exceed `eps`. Otherwise the exact gain.
    ///
    /// `scratch` is a caller-owned buffer reused across pairs so the
    /// per-coreset row lookups happen exactly once per pair: the
    /// collect pass fills it, the bound reads lengths from it, and the
    /// exact pass consumes it — an unpruned score costs no more hash
    /// lookups than a plain [`Self::pair_gain`].
    pub(crate) fn gain_pruned(
        &self,
        x: LeafsetId,
        y: LeafsetId,
        eps: f64,
        scratch: &mut Vec<SharedRow>,
    ) -> Option<f64> {
        if x == y || self.db.is_nested_pair(x, y) {
            return Some(0.0);
        }
        let p = self.prelude(x, y);
        self.collect_shared(x, y, p.union_id, scratch);
        if self.db.gain_policy == GainPolicy::Total && self.bound(&p, scratch) <= eps {
            return None;
        }
        Some(self.exact_gain(&p, scratch))
    }

    /// The exact gain through a caller-owned scratch buffer — the cost
    /// profile of [`Self::pair_gain`] without its per-call allocation.
    /// Used by the full-regeneration sweep, where the bound cannot pay
    /// for itself: the sweep keeps only the single best pair, and the
    /// bound can never prune the best pair by construction.
    pub(crate) fn gain_with(
        &self,
        x: LeafsetId,
        y: LeafsetId,
        scratch: &mut Vec<SharedRow>,
    ) -> f64 {
        if x == y || self.db.is_nested_pair(x, y) {
            return 0.0;
        }
        let p = self.prelude(x, y);
        self.collect_shared(x, y, p.union_id, scratch);
        self.exact_gain(&p, scratch)
    }

    /// Per-pair scoring context shared by the bound and the exact gain.
    fn prelude(&self, x: LeafsetId, y: LeafsetId) -> PairPrelude {
        let db = self.db;
        let items = union_items(&db.leafsets[x as usize], &db.leafsets[y as usize]);
        let union_id = db.leafset_index.get(&items).copied();
        let (union_st_cost, st_x, st_y) = if db.gain_policy == GainPolicy::Total {
            (
                db.st.set_cost(items.iter().map(|&a| a as usize)),
                db.leafset_st_cost(x),
                db.leafset_st_cost(y),
            )
        } else {
            (0.0, 0.0, 0.0)
        };
        PairPrelude {
            union_id,
            union_st_cost,
            st_x,
            st_y,
        }
    }

    /// Resolves the pair's shared coresets to row handles (clearing
    /// `out` first): a two-pointer walk over the sorted membership
    /// lists, with one hash lookup per row — the only lookups any
    /// scoring path performs for this pair.
    fn collect_shared(
        &self,
        x: LeafsetId,
        y: LeafsetId,
        union_id: Option<LeafsetId>,
        out: &mut Vec<SharedRow>,
    ) {
        let db = self.db;
        out.clear();
        for e in shared_iter(
            &db.leafset_coresets[x as usize],
            &db.leafset_coresets[y as usize],
        ) {
            let rx = db.rows[e as usize][&x];
            let Some(&ry) = db.rows[e as usize].get(&y) else {
                continue;
            };
            let rn = union_id.and_then(|n| db.rows[e as usize].get(&n)).copied();
            out.push(SharedRow { e, rx, ry, rn });
        }
    }

    /// The exact gain of Eq. 9/10–15 over collected shared rows; see
    /// [`Self::pair_gain`] for the contract.
    fn exact_gain(&self, pre: &PairPrelude, shared: &[SharedRow]) -> f64 {
        let db = self.db;
        let PairPrelude {
            union_st_cost,
            st_x,
            st_y,
            ..
        } = *pre;
        let (mut p1, mut p2) = (0.0f64, 0.0f64);
        let mut model_delta = 0.0f64;
        let mut merged_any = false;
        for &SharedRow { e, rx, ry, rn } in shared {
            let (xy, grown) = match rn {
                // Collision path: need the union row's actual growth.
                Some(r) => {
                    let common = self.store.intersect(rx, ry);
                    if common.is_empty() {
                        continue;
                    }
                    let pn_len = self.store.len(r);
                    let merged_len =
                        pn_len + common.len() - self.store.intersect_count_slice(r, &common);
                    // Union-row term2 change replaces the fresh-row term.
                    p2 += xlog2x(pn_len as f64) - xlog2x(merged_len as f64)
                        + xlog2x(common.len() as f64);
                    (common.len() as f64, (merged_len - pn_len) as f64)
                }
                None => {
                    let xy = self.store.intersect_count(rx, ry) as f64;
                    if xy == 0.0 {
                        continue;
                    }
                    (xy, xy)
                }
            };
            merged_any = true;
            let (xe, ye) = (self.store.len(rx) as f64, self.store.len(ry) as f64);
            let fe = db.coreset_freq[e as usize] as f64;
            // Eq. 10 (with the exact post-merge coreset frequency).
            p1 += xlog2x(fe) - xlog2x(fe - 2.0 * xy + grown);
            // Eq. 12–15 unified: vanished rows contribute xlog2x(0) = 0.
            p2 += xlog2x(xe) + xlog2x(ye) - (xlog2x(xe - xy) + xlog2x(ye - xy) + xlog2x(xy));
            if db.gain_policy == GainPolicy::Total {
                let code_e = db.coresets[e as usize].code_len;
                if rn.is_none() {
                    model_delta += union_st_cost + code_e;
                }
                if xy == xe {
                    model_delta -= st_x + code_e;
                }
                if xy == ye {
                    model_delta -= st_y + code_e;
                }
            }
        }
        if !merged_any {
            return 0.0;
        }
        let data_gain = p1 - p2;
        match db.gain_policy {
            GainPolicy::DataOnly => data_gain,
            GainPolicy::Total => data_gain - model_delta,
        }
    }

    /// Upper bound on [`Self::pair_gain`] from row *lengths* alone — no
    /// position list is ever scanned, so the bound costs O(shared
    /// coresets) against the gain's O(total positions). This is the
    /// pruning bound of the paper's Algorithm 2: candidate pairs whose
    /// bound is non-positive provably cannot improve the description
    /// length and are dismissed before they enter the queue.
    ///
    /// Derivation, per shared coreset `e` with row lengths `xe`, `ye`,
    /// `m = min(xe, ye)` and `F = xlog2x` (non-decreasing over the
    /// integers, `F(0) = F(1) = 0`): the true overlap `xy` lies in
    /// `[1, m]` when the rows co-occur, so
    ///
    /// * fresh union row: `p1 = F(fe) − F(fe − xy) ≤ F(fe) − F(fe − m)`
    ///   and `−p2 ≤ F(xy) ≤ F(m)` (the parent brackets
    ///   `F(xe) − F(xe − xy)` are non-negative and dropped);
    /// * existing union row of length `pn`: `p1 ≤ F(fe) − F(fe − 2m)`
    ///   and `−p2 ≤ F(merged) − F(pn) ≤ F(pn + m) − F(pn)`.
    ///
    /// Under [`GainPolicy::Total`] the model delta is bounded below by
    /// charging the new row's materialisation (fresh case only) and
    /// crediting every parent removal that is feasible (`xy = xe`
    /// requires `xe ≤ ye`, and vice versa). Coresets where the rows may
    /// simply not co-occur contribute `max(0, bound_e)` — a pair's true
    /// gain only sums over co-occurring coresets, so the clamp keeps
    /// the total an upper bound in every overlap scenario.
    ///
    /// Under [`GainPolicy::DataOnly`] the per-coreset bound is always
    /// positive, so nothing is ever pruned (documented behaviour: the
    /// data side alone cannot prove a merge unprofitable without
    /// counting the actual overlap).
    pub fn pair_gain_upper_bound(&self, x: LeafsetId, y: LeafsetId) -> f64 {
        if x == y || self.db.is_nested_pair(x, y) {
            return 0.0;
        }
        let p = self.prelude(x, y);
        let mut shared = Vec::new();
        self.collect_shared(x, y, p.union_id, &mut shared);
        self.bound(&p, &shared)
    }

    /// The Algorithm 2 bound over collected shared rows; see
    /// [`Self::pair_gain_upper_bound`] for the derivation. Reads only
    /// row *lengths* — no position list is scanned.
    fn bound(&self, pre: &PairPrelude, shared: &[SharedRow]) -> f64 {
        let db = self.db;
        let total = db.gain_policy == GainPolicy::Total;
        let PairPrelude {
            union_st_cost,
            st_x,
            st_y,
            ..
        } = *pre;
        let mut bound = 0.0f64;
        for &SharedRow { e, rx, ry, rn } in shared {
            let xe = self.store.len(rx) as f64;
            let ye = self.store.len(ry) as f64;
            let m = xe.min(ye);
            let fe = db.coreset_freq[e as usize] as f64;
            let existing = rn.map(|r| self.store.len(r) as f64);
            let mut ub = match existing {
                Some(pn) => xlog2x(fe) - xlog2x(fe - 2.0 * m) + xlog2x(pn + m) - xlog2x(pn),
                None => xlog2x(fe) - xlog2x(fe - m) + xlog2x(m),
            };
            if total {
                let code_e = db.coresets[e as usize].code_len;
                if existing.is_none() {
                    ub -= union_st_cost + code_e;
                }
                if xe <= ye {
                    ub += st_x + code_e;
                }
                if ye <= xe {
                    ub += st_y + code_e;
                }
            }
            if ub > 0.0 {
                bound += ub;
            }
        }
        bound
    }

    /// Whether the leafset still has at least one row.
    pub fn is_live(&self, lid: LeafsetId) -> bool {
        self.db.is_live(lid)
    }
}

/// Per-pair scoring context computed once and shared between the
/// Algorithm 2 bound and the exact gain: the union leafset's identity
/// and the ST costs the Total pricing needs (zeroed under `DataOnly`,
/// where no model term is priced).
struct PairPrelude {
    union_id: Option<LeafsetId>,
    union_st_cost: f64,
    st_x: f64,
    st_y: f64,
}

/// One shared coreset of a candidate pair, resolved to row handles by
/// [`GainView`]'s collect pass: the parents' rows plus the union
/// leafset's row when it already exists at this coreset.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SharedRow {
    e: CoresetId,
    rx: RowId,
    ry: RowId,
    rn: Option<RowId>,
}

/// Two-pointer intersection of two sorted coreset-id lists.
fn shared_sorted(a: &[CoresetId], b: &[CoresetId]) -> Vec<CoresetId> {
    shared_iter(a, b).collect()
}

/// Allocation-free two-pointer walk over the coresets two (sorted)
/// membership lists have in common — the inner loop of every gain and
/// bound evaluation, linear where a `contains` filter is quadratic.
fn shared_iter<'a>(a: &'a [CoresetId], b: &'a [CoresetId]) -> impl Iterator<Item = CoresetId> + 'a {
    let (mut i, mut j) = (0usize, 0usize);
    std::iter::from_fn(move || {
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let e = a[i];
                    i += 1;
                    j += 1;
                    return Some(e);
                }
            }
        }
        None
    })
}

fn union_items(a: &[AttrId], b: &[AttrId]) -> Vec<AttrId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    out.extend_from_slice(a);
    out.extend_from_slice(b);
    out.sort_unstable();
    out.dedup();
    out
}

/// The vertex→attribute transaction table used for multi-value coresets.
fn vertex_transactions(g: &AttributedGraph) -> TransactionDb {
    TransactionDb::with_item_universe(
        g.vertices().map(|v| g.labels(v).to_vec()).collect(),
        g.attr_count(),
    )
}

/// Converts a Krimp/SLIM code table into coreset occurrences: each
/// pattern used in the cover of a vertex's attribute set becomes a
/// coreset occurrence at that vertex; its `CT_c` code length is the
/// Shannon code of its usage.
fn coresets_from_code_table(
    ct: &cspm_itemset::CodeTable,
    db: &TransactionDb,
) -> Vec<(Vec<AttrId>, f64, Vec<VertexId>)> {
    let cover = ct.cover(db);
    let mut positions: Vec<Vec<VertexId>> = vec![Vec::new(); ct.len()];
    for (v, used) in cover.covers.iter().enumerate() {
        for &p in used {
            positions[p as usize].push(v as VertexId);
        }
    }
    let s = cover.total_usage as f64;
    let mut out = Vec::new();
    for (i, p) in ct.patterns().iter().enumerate() {
        if cover.usages[i] == 0 {
            continue;
        }
        let code = -((cover.usages[i] as f64 / s).log2());
        out.push((p.items().to_vec(), code, std::mem::take(&mut positions[i])));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cspm_graph::fixtures::paper_example;

    fn build_paper_db() -> (InvertedDb, cspm_graph::fixtures::PaperAttrs) {
        let (g, a) = paper_example();
        (
            InvertedDb::build(&g, CoresetMode::SingleValue, GainPolicy::DataOnly),
            a,
        )
    }

    /// Finds the leafset id of a singleton leaf value.
    fn lid(db: &InvertedDb, a: AttrId) -> LeafsetId {
        db.live_leafsets()
            .into_iter()
            .find(|&l| db.leafset_items(l) == [a])
            .expect("singleton leafset exists")
    }

    fn cid(db: &InvertedDb, a: AttrId) -> CoresetId {
        db.coresets()
            .iter()
            .position(|c| c.items == [a])
            .expect("coreset exists") as CoresetId
    }

    #[test]
    fn initial_rows_match_fig2b() {
        // From Fig. 2(b): the record ({a}, {c}, {v2, v3}) exists, etc.
        let (db, at) = build_paper_db();
        assert_eq!(db.coreset_count(), 3);
        let (ca, cb, cc) = (cid(&db, at.a), cid(&db, at.b), cid(&db, at.c));
        let (la, lb, lc) = (lid(&db, at.a), lid(&db, at.b), lid(&db, at.c));
        // Coreset {c} has leaf {a} at v2, v3 (blue record of Fig. 2(b)).
        assert_eq!(db.row_positions(cc, la).as_deref(), Some(&[1u32, 2][..]));
        // Coreset {a}: leaf {a} at v1 (nbr v2), v2 (nbr v1), v5 — wait v5's
        // nbrs are v3{c}, v4{b}: no a. v1 nbrs v2{a,c}: yes. v2 nbr v1{a}.
        assert_eq!(db.row_positions(ca, la).as_deref(), Some(&[0u32, 1][..]));
        // Coreset {a}: leaf {b} at v1 (nbr v4) and v5 (nbr v4).
        assert_eq!(db.row_positions(ca, lb).as_deref(), Some(&[0u32, 4][..]));
        // Coreset {a}: leaf {c} at v1 (nbr v2/v3) and v5 (nbr v3).
        assert_eq!(db.row_positions(ca, lc).as_deref(), Some(&[0u32, 4][..]));
        // Coreset {b}: leaf {b} at v4 (nbr v5{a,b}) and v5 (nbr v4{b}).
        assert_eq!(db.row_positions(cb, lb).as_deref(), Some(&[3u32, 4][..]));
        // Coreset {b}: leaf {c} at v5 only (nbr v3{c}).
        assert_eq!(db.row_positions(cb, lc).as_deref(), Some(&[4u32][..]));
    }

    #[test]
    fn coreset_freq_is_row_sum() {
        let (db, at) = build_paper_db();
        for e in 0..db.coreset_count() as CoresetId {
            let sum: u64 = db
                .iter_rows()
                .filter(|&(c, _, _)| c == e)
                .map(|(_, _, p)| p.len() as u64)
                .sum();
            assert_eq!(db.coreset_freq(e), sum);
        }
        let _ = at;
    }

    #[test]
    fn paper_merge_bc_fig4() {
        // §IV-E worked example: merging leafsets {b} and {c}.
        let (mut db, at) = build_paper_db();
        let (lb, lc) = (lid(&db, at.b), lid(&db, at.c));
        let (ca, cb) = (cid(&db, at.a), cid(&db, at.b));
        let gain = db.pair_gain(lb, lc);
        let data_before = db.data_cost();
        let outcome = db.merge(lb, lc);
        // Coreset {a}: both rows were {v1, v5} — totally merged (case 2).
        let n = outcome.new_leafset;
        assert_eq!(db.row_positions(ca, n).as_deref(), Some(&[0u32, 4][..]));
        assert_eq!(db.row_positions(ca, lb), None);
        assert_eq!(db.row_positions(ca, lc), None);
        // Coreset {b}: common position {v5}; ({b},{c}) disappears, the
        // row for leafset {b} keeps {v4} (case 3) — Fig. 4.
        assert_eq!(db.row_positions(cb, n).as_deref(), Some(&[4u32][..]));
        assert_eq!(db.row_positions(cb, lb).as_deref(), Some(&[3u32][..]));
        assert_eq!(db.row_positions(cb, lc), None);
        // {c} no longer appears under any coreset; {b} survives at {b}
        // and at {c} (v3's neighbour v5 carries b).
        assert!(outcome.y_removed || outcome.x_removed);
        assert!(db.is_live(n));
        // The data-only gain equals the exact L(I|M) reduction (Eq. 9).
        let data_delta = db.data_cost() - data_before;
        assert!(
            (gain + data_delta).abs() < 1e-9,
            "gain {gain} vs data delta {data_delta}"
        );
    }

    #[test]
    fn data_only_gain_matches_exact_data_delta() {
        let (db, _) = build_paper_db();
        for &(x, y) in db.sharing_pairs().iter() {
            if db.is_nested_pair(x, y) {
                continue;
            }
            let gain = db.pair_gain(x, y);
            let mut clone = db.clone();
            let out = clone.merge(x, y);
            if out.merged_any {
                let delta = clone.data_cost() - db.data_cost();
                assert!(
                    (gain + delta).abs() < 1e-9,
                    "pair ({x},{y}): gain {gain} but data delta {delta}"
                );
            } else {
                assert_eq!(gain, 0.0);
            }
        }
    }

    #[test]
    fn total_gain_matches_exact_total_delta() {
        let (g, _) = paper_example();
        let db = InvertedDb::build(&g, CoresetMode::SingleValue, GainPolicy::Total);
        for &(x, y) in db.sharing_pairs().iter() {
            if db.is_nested_pair(x, y) {
                continue;
            }
            let gain = db.pair_gain(x, y);
            let mut clone = db.clone();
            let out = clone.merge(x, y);
            if out.merged_any {
                assert!(
                    (gain + out.dl_delta).abs() < 1e-9,
                    "pair ({x},{y}): total gain {gain} but dl_delta {}",
                    out.dl_delta
                );
            } else {
                assert_eq!(gain, 0.0);
            }
        }
    }

    #[test]
    fn data_cost_matches_eq8_direct() {
        let (db, _) = build_paper_db();
        // Direct evaluation of Eq. 8 from the rows.
        let mut direct = 0.0;
        for e in 0..db.coreset_count() as CoresetId {
            let cj = db.coreset_freq(e) as f64;
            direct += xlog2x(cj);
        }
        for (_, _, p) in db.iter_rows() {
            direct -= xlog2x(p.len() as f64);
        }
        assert!((db.data_cost() - direct).abs() < 1e-9);
        // And it equals s · H(Y|X) (Eq. 8's first line).
        let s: f64 = (0..db.coreset_count() as CoresetId)
            .map(|e| db.coreset_freq(e) as f64)
            .sum();
        assert!((db.data_cost() - s * db.conditional_entropy()).abs() < 1e-9);
    }

    #[test]
    fn nested_pairs_are_never_candidates() {
        let (mut db, at) = build_paper_db();
        let (lb, lc) = (lid(&db, at.b), lid(&db, at.c));
        let out = db.merge(lb, lc);
        let n = out.new_leafset;
        // {b} ⊂ {b, c}: nested, gain must be 0.
        assert!(db.is_nested_pair(lb, n));
        assert_eq!(db.pair_gain(lb, n), 0.0);
    }

    #[test]
    fn live_leafset_count_tracks_rows() {
        let (mut db, at) = build_paper_db();
        let before = db.live_leafset_count();
        assert_eq!(before, 3); // {a}, {b}, {c}
        let out = db.merge(lid(&db, at.b), lid(&db, at.c));
        // {c} died, {b,c} was born, {b} survived: still 3 live.
        assert!(out.y_removed ^ out.x_removed);
        assert_eq!(db.live_leafset_count(), 3);
        assert_eq!(db.live_leafsets().len(), 3);
    }

    #[test]
    fn sharing_pairs_on_paper_example() {
        let (db, _) = build_paper_db();
        // All three singleton leafsets co-reside under coreset {a}.
        let pairs = db.sharing_pairs();
        assert_eq!(pairs.len(), 3);
    }

    /// The Algorithm 2 pruning bound must dominate the exact gain for
    /// every candidate pair, under both pricing policies, before and
    /// after merges (the post-merge states exercise the existing-union-
    /// row collision path of both formulas).
    #[test]
    fn gain_upper_bound_dominates_exact_gain() {
        for policy in [GainPolicy::DataOnly, GainPolicy::Total] {
            let (g, _) = paper_example();
            let mut db = InvertedDb::build(&g, CoresetMode::SingleValue, policy);
            for _round in 0..4 {
                for &(x, y) in db.sharing_pairs().iter() {
                    let gain = db.pair_gain(x, y);
                    let ub = db.pair_gain_upper_bound(x, y);
                    assert!(
                        gain <= ub + 1e-9,
                        "{policy:?}: pair ({x},{y}) gain {gain} exceeds bound {ub}"
                    );
                }
                // Apply the best pair (if any) to reach a new state.
                let best = db
                    .sharing_pairs()
                    .into_iter()
                    .max_by(|&(a, b), &(c, d)| db.pair_gain(a, b).total_cmp(&db.pair_gain(c, d)));
                match best {
                    Some((x, y)) if db.pair_gain(x, y) > 0.0 => {
                        db.merge(x, y);
                    }
                    _ => break,
                }
            }
        }
    }

    #[test]
    fn gain_view_matches_database_scoring() {
        let (db, _) = build_paper_db();
        let view = db.gain_view();
        for &(x, y) in db.sharing_pairs().iter() {
            assert_eq!(view.pair_gain(x, y), db.pair_gain(x, y));
            assert_eq!(
                view.pair_gain_upper_bound(x, y),
                db.pair_gain_upper_bound(x, y)
            );
            assert!(view.is_live(x) && view.is_live(y));
        }
        // Views are Copy and usable from worker threads.
        let pairs = db.sharing_pairs();
        let expected: Vec<f64> = pairs.iter().map(|&(x, y)| db.pair_gain(x, y)).collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = pairs
                .iter()
                .map(|&(x, y)| {
                    let v = db.gain_view();
                    s.spawn(move || v.pair_gain(x, y))
                })
                .collect();
            for (h, want) in handles.into_iter().zip(&expected) {
                assert_eq!(h.join().unwrap(), *want);
            }
        });
    }

    /// A database's full logical state through public accessors: rows
    /// (sorted), per-coreset frequencies, data cost, model cost.
    type DbDigest = (
        Vec<(CoresetId, LeafsetId, Vec<VertexId>)>,
        Vec<u64>,
        f64,
        f64,
    );

    fn digest(db: &InvertedDb) -> DbDigest {
        let mut rows: Vec<_> = db.iter_rows().map(|(e, l, p)| (e, l, p.to_vec())).collect();
        rows.sort();
        let freqs = (0..db.coreset_count() as CoresetId)
            .map(|e| db.coreset_freq(e))
            .collect();
        (rows, freqs, db.data_cost(), db.model_cost())
    }

    /// `from_pristine_rows` fed a fresh build's own rows must land on a
    /// database bit-identical to that build (floats included) — the
    /// invariant warm snapshot restores rest on.
    #[test]
    fn restored_database_matches_fresh_build() {
        let (g, _) = paper_example();
        for policy in [GainPolicy::Total, GainPolicy::DataOnly] {
            let fresh = InvertedDb::build(&g, CoresetMode::SingleValue, policy);
            let mut rows: Vec<(CoresetId, LeafsetId, Vec<VertexId>)> = fresh
                .iter_rows()
                .map(|(e, l, p)| (e, l, p.to_vec()))
                .collect();
            rows.sort();
            let restored = InvertedDb::from_pristine_rows(
                &g,
                policy,
                rows.iter().map(|(e, l, p)| (*e, *l, p.as_slice())),
            )
            .unwrap();
            assert!(restored.is_pristine());
            assert_eq!(digest(&restored), digest(&fresh));
            assert_eq!(restored.total_dl().to_bits(), fresh.total_dl().to_bits());
            assert_eq!(
                restored.conditional_entropy().to_bits(),
                fresh.conditional_entropy().to_bits()
            );
        }
    }

    /// Every structural violation in serialized rows is a typed
    /// [`RestoreError`], never a panic.
    #[test]
    fn restore_rejects_mangled_rows() {
        let (g, _) = paper_example();
        type Rows = Vec<(CoresetId, LeafsetId, Vec<VertexId>)>;
        let build = |rows: Rows| {
            InvertedDb::from_pristine_rows(
                &g,
                GainPolicy::Total,
                rows.iter().map(|(e, l, p)| (*e, *l, p.as_slice())),
            )
        };
        let cases: Vec<(Rows, &str)> = vec![
            (vec![(99, 0, vec![0])], "unknown coreset"),
            (vec![(0, 99, vec![0])], "non-singleton leafset"),
            (vec![(0, 0, vec![])], "no positions"),
            (vec![(0, 0, vec![1, 0])], "not strictly sorted"),
            (vec![(0, 0, vec![0, 0])], "not strictly sorted"),
            (vec![(0, 0, vec![0, 99])], "beyond the graph"),
            (vec![(0, 0, vec![0]), (0, 0, vec![1])], "duplicate row"),
        ];
        for (rows, needle) in cases {
            let err = build(rows).unwrap_err();
            assert!(
                err.message.contains(needle),
                "expected '{needle}', got '{}'",
                err.message
            );
        }
    }

    /// `apply_delta` must land on a database *bit-identical* (in
    /// every observable respect, floats included) to a fresh build of
    /// the grown graph — the invariant warm session re-mining rests on.
    #[test]
    fn patched_database_matches_fresh_build() {
        use cspm_graph::dynamic::{DeltaVertex, GraphDelta};
        let (g, _) = paper_example();
        for policy in [GainPolicy::Total, GainPolicy::DataOnly] {
            let mut db = InvertedDb::build(&g, CoresetMode::SingleValue, policy);
            assert!(db.is_pristine());

            let mut delta = GraphDelta::new();
            let w = delta.add_vertex(["d", "a"]); // "d" is a brand-new value
            delta.add_edge(w, DeltaVertex::Existing(1));
            delta.add_edge(w, DeltaVertex::Existing(4));
            delta.add_label(2, "b");
            let applied = delta.apply(&g).unwrap();

            let stats = db
                .apply_delta(&applied.graph, &applied.dirty_centers)
                .unwrap();
            assert_eq!(stats.new_coresets, 1, "value 'd' creates one coreset");
            assert!(stats.positions_added > 0);

            let fresh = InvertedDb::build(&applied.graph, CoresetMode::SingleValue, policy);
            assert_eq!(digest(&db), digest(&fresh));
            assert_eq!(db.total_dl(), fresh.total_dl(), "DL must match to the bit");
            assert_eq!(db.live_leafset_count(), fresh.live_leafset_count());
            assert_eq!(db.sharing_pairs(), fresh.sharing_pairs());
            // Every candidate pair scores identically on both.
            for &(x, y) in fresh.sharing_pairs().iter() {
                assert_eq!(db.pair_gain(x, y), fresh.pair_gain(x, y));
                assert_eq!(
                    db.pair_gain_upper_bound(x, y),
                    fresh.pair_gain_upper_bound(x, y)
                );
            }
        }
    }

    /// Churn patching: removals and label changes must also land bit-
    /// identical to a fresh build of the evolved graph, including rows
    /// that shrink, rows that empty out and are released, and rows
    /// whose dirty centers re-qualify with different leaves.
    #[test]
    fn churn_patched_database_matches_fresh_build() {
        use cspm_graph::dynamic::GraphDelta;
        let (g, _) = paper_example();
        let deltas: Vec<GraphDelta> = vec![
            {
                let mut d = GraphDelta::new();
                d.remove_edge(0, 1);
                d
            },
            {
                // Value "c" keeps occurring elsewhere, so the patch path
                // stays open while rows referencing v4's c-leaf shrink.
                let mut d = GraphDelta::new();
                d.remove_label(2, "c");
                d
            },
            {
                let mut d = GraphDelta::new();
                d.change_label(3, "b", "a");
                d
            },
            {
                let mut d = GraphDelta::new();
                d.remove_vertex(1);
                d
            },
        ];
        for policy in [GainPolicy::Total, GainPolicy::DataOnly] {
            for delta in &deltas {
                let mut db = InvertedDb::build(&g, CoresetMode::SingleValue, policy);
                let applied = delta.apply(&g).unwrap();
                let stats = match db.apply_delta(&applied.graph, &applied.dirty_centers) {
                    Ok(stats) => stats,
                    Err(PatchError::VanishedAttribute(_)) => continue, // legit fallback
                    Err(e) => panic!("unexpected patch error: {e}"),
                };
                assert!(stats.positions_removed > 0, "churn must clear positions");
                let fresh = InvertedDb::build(&applied.graph, CoresetMode::SingleValue, policy);
                assert_eq!(digest(&db), digest(&fresh), "delta {delta:?}");
                assert_eq!(db.total_dl().to_bits(), fresh.total_dl().to_bits());
                assert_eq!(db.live_leafset_count(), fresh.live_leafset_count());
                assert_eq!(db.sharing_pairs(), fresh.sharing_pairs());
                for &(x, y) in fresh.sharing_pairs().iter() {
                    assert_eq!(db.pair_gain(x, y), fresh.pair_gain(x, y));
                }
            }
        }
    }

    /// A removal that wipes out an attribute value's last occurrence
    /// must be refused (a fresh build would renumber), never silently
    /// patched into a desynced database.
    #[test]
    fn vanished_attribute_is_rejected_not_corrupted() {
        use cspm_graph::dynamic::GraphDelta;
        use cspm_graph::AttrTable;
        // attrs: a=0 on both vertices, b=1 only on vertex 1.
        let mut attrs = AttrTable::new();
        let (a, b) = (attrs.intern("a"), attrs.intern("b"));
        let g = AttributedGraph::from_edge_list(vec![vec![a], vec![a, b]], attrs, [(0u32, 1u32)])
            .unwrap();
        let mut db = InvertedDb::build(&g, CoresetMode::SingleValue, GainPolicy::Total);
        assert_eq!(db.coreset_count(), 2);
        let before = digest(&db);
        let mut delta = GraphDelta::new();
        delta.remove_label(1, "b");
        let applied = delta.apply(&g).unwrap();
        assert_eq!(
            db.apply_delta(&applied.graph, &applied.dirty_centers),
            Err(PatchError::VanishedAttribute(b))
        );
        assert_eq!(digest(&db), before, "refused patch must not mutate");
    }

    #[test]
    fn patch_preconditions_are_enforced() {
        let (g, _) = paper_example();
        let mut db = InvertedDb::build(&g, CoresetMode::SingleValue, GainPolicy::Total);
        let (x, y) = db.sharing_pairs()[0];
        db.merge(x, y);
        assert!(!db.is_pristine());
        assert_eq!(db.apply_delta(&g, &[]), Err(PatchError::NotPristine));

        let mut db = InvertedDb::build(&g, CoresetMode::Slim, GainPolicy::Total);
        assert_eq!(
            db.apply_delta(&g, &[]),
            Err(PatchError::UnsupportedCoresetMode)
        );
    }

    /// Regression: a base interner carrying an unused value desyncs
    /// coreset ids from attr ids at build time. The patch must detect
    /// that on the *database* — a delta attaching the formerly unused
    /// value makes the grown graph look perfectly healthy, which is
    /// exactly how the original grown-graph check was fooled into
    /// silently corrupting the patch.
    #[test]
    fn desynced_numbering_is_rejected_not_corrupted() {
        use cspm_graph::dynamic::GraphDelta;
        use cspm_graph::AttrTable;
        // attrs: a=0, b=1 (unused!), c=2.
        let mut attrs = AttrTable::new();
        let (a, b, c) = (attrs.intern("a"), attrs.intern("b"), attrs.intern("c"));
        assert_eq!((a, b, c), (0, 1, 2));
        let labels = vec![vec![a], vec![c], vec![a, c]];
        let g = AttributedGraph::from_edge_list(labels, attrs, [(0u32, 1u32), (1, 2)]).unwrap();
        let mut db = InvertedDb::build(&g, CoresetMode::SingleValue, GainPolicy::Total);
        // Build skipped b: coreset 1 is {c}, not {b} — desynced.
        assert_eq!(db.coreset_count(), 2);

        // Mid-table desync: rejected whether or not the delta attaches
        // the unused value.
        let mut delta = GraphDelta::new();
        delta.add_label(0, "b");
        let applied = delta.apply(&g).unwrap();
        assert_eq!(
            db.apply_delta(&applied.graph, &applied.dirty_centers),
            Err(PatchError::NonCanonicalCoresets(1))
        );

        // Tail desync: unused value at the END of the table passes the
        // numbering check (coresets 0..n are canonical) but a fresh
        // build of the unchanged-frequency graph would still skip it.
        let mut attrs = AttrTable::new();
        let (a, z) = (attrs.intern("a"), attrs.intern("z"));
        assert_eq!((a, z), (0, 1));
        let g2 =
            AttributedGraph::from_edge_list(vec![vec![a], vec![a]], attrs, [(0u32, 1u32)]).unwrap();
        let mut db2 = InvertedDb::build(&g2, CoresetMode::SingleValue, GainPolicy::Total);
        assert_eq!(db2.coreset_count(), 1);
        let mut delta = GraphDelta::new();
        delta.add_edge(
            cspm_graph::dynamic::DeltaVertex::Existing(0),
            cspm_graph::dynamic::DeltaVertex::Existing(1),
        ); // duplicate edge: z stays unattached
        let applied = delta.apply(&g2).unwrap();
        assert_eq!(
            db2.apply_delta(&applied.graph, &applied.dirty_centers),
            Err(PatchError::EmptyAttribute(1))
        );
    }

    #[test]
    fn empty_patch_is_identity() {
        let (g, _) = paper_example();
        let mut db = InvertedDb::build(&g, CoresetMode::SingleValue, GainPolicy::Total);
        let before = digest(&db);
        let stats = db.apply_delta(&g, &[]).unwrap();
        assert_eq!(stats, PatchStats::default());
        assert_eq!(digest(&db), before);
        assert!(db.is_pristine());
    }

    #[test]
    fn multi_value_coresets_via_slim() {
        let (g, _) = paper_example();
        let db = InvertedDb::build(&g, CoresetMode::Slim, GainPolicy::Total);
        // Every vertex's attributes are covered, so coresets exist and
        // every coreset has rows.
        assert!(db.coreset_count() >= 3);
        assert!(db.row_count() > 0);
        for e in 0..db.coreset_count() as CoresetId {
            let has_rows = db.iter_rows().any(|(c, _, _)| c == e);
            // Coresets at leaf-less vertices may have no rows; tolerated.
            let _ = has_rows;
        }
    }
}
