//! Lossless decoding of the inverted database.
//!
//! The paper's problem statement requires compressing "the original
//! information of the attributed graph G **losslessly**" (§IV-A). The
//! information the inverted database carries is, for every coreset
//! occurrence `(vertex v, coreset Sc)`, the set of attribute values
//! appearing on `v`'s neighbours. Merging moves positions between rows
//! but never drops them, so decoding — uniting the leafsets of all rows
//! whose position sets contain `v` — must reproduce that neighbourhood
//! information exactly. [`verify_lossless`] checks this against the
//! original graph; it is used by integration and property tests and is
//! exposed for downstream users who want end-to-end assurance.

use std::collections::BTreeSet;

use cspm_graph::{AttrId, AttributedGraph, VertexId};

use crate::inverted::{CoresetId, InvertedDb};

/// A decoding failure: the reconstructed neighbourhood of one coreset
/// occurrence differs from the graph's.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LossError {
    /// The vertex whose neighbourhood decoded incorrectly.
    pub vertex: VertexId,
    /// The coreset at that vertex.
    pub coreset: CoresetId,
    /// Leaf values present in the graph but missing from the decode.
    pub missing: Vec<AttrId>,
    /// Leaf values produced by the decode but absent from the graph.
    pub spurious: Vec<AttrId>,
}

/// Decodes the neighbourhood attribute set of vertex `v` under coreset
/// `e`: the union of the leafsets of all rows of `e` whose positions
/// contain `v`.
pub fn decode_neighborhood(db: &InvertedDb, e: CoresetId, v: VertexId) -> BTreeSet<AttrId> {
    let mut out = BTreeSet::new();
    for (row_e, lid, positions) in db.iter_rows() {
        if row_e == e && positions.binary_search(&v).is_ok() {
            out.extend(db.leafset_items(lid).iter().copied());
        }
    }
    out
}

/// The ground truth: attribute values on the neighbours of `v`.
pub fn true_neighborhood(g: &AttributedGraph, v: VertexId) -> BTreeSet<AttrId> {
    g.neighbors(v)
        .iter()
        .flat_map(|&u| g.labels(u).iter().copied())
        .collect()
}

/// Verifies that the (possibly heavily merged) inverted database still
/// describes the graph losslessly. Returns every violation found
/// (empty = lossless).
pub fn verify_lossless(g: &AttributedGraph, db: &InvertedDb) -> Vec<LossError> {
    let mut errors = Vec::new();
    for (e, coreset) in db.coresets().iter().enumerate() {
        let e = e as CoresetId;
        for &v in &coreset.positions {
            if g.neighbors(v).is_empty() {
                continue; // isolated occurrences produce no rows
            }
            let decoded = decode_neighborhood(db, e, v);
            let truth = true_neighborhood(g, v);
            if decoded != truth {
                errors.push(LossError {
                    vertex: v,
                    coreset: e,
                    missing: truth.difference(&decoded).copied().collect(),
                    spurious: decoded.difference(&truth).copied().collect(),
                });
            }
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CoresetMode, CspmConfig, GainPolicy};
    use crate::{cspm_basic, cspm_partial};
    use cspm_graph::fixtures::{labelled_path, paper_example};

    #[test]
    fn initial_db_is_lossless() {
        let (g, _) = paper_example();
        let db = InvertedDb::build(&g, CoresetMode::SingleValue, GainPolicy::Total);
        assert!(verify_lossless(&g, &db).is_empty());
    }

    #[test]
    fn converged_db_is_lossless_both_variants() {
        let (g, _) = paper_example();
        for result in [
            cspm_basic(&g, CspmConfig::default()),
            cspm_partial(&g, CspmConfig::default()),
        ] {
            let errors = verify_lossless(&g, &result.db);
            assert!(errors.is_empty(), "loss after mining: {errors:?}");
        }
    }

    #[test]
    fn lossless_on_path_fixture() {
        let g = labelled_path(12, 3);
        let result = cspm_partial(&g, CspmConfig::default());
        assert!(verify_lossless(&g, &result.db).is_empty());
    }

    #[test]
    fn decode_matches_manual_expectation() {
        // v1 of the paper example under coreset {a}: neighbours v2{a,c},
        // v3{c}, v4{b} -> {a, b, c}.
        let (g, at) = paper_example();
        let db = InvertedDb::build(&g, CoresetMode::SingleValue, GainPolicy::Total);
        let e = db
            .coresets()
            .iter()
            .position(|c| c.items == [at.a])
            .unwrap() as CoresetId;
        let decoded = decode_neighborhood(&db, e, 0);
        let expected: BTreeSet<AttrId> = [at.a, at.b, at.c].into_iter().collect();
        assert_eq!(decoded, expected);
        assert_eq!(true_neighborhood(&g, 0), expected);
    }

    #[test]
    fn corrupted_db_is_detected() {
        // Removing a merge's worth of information must be caught: build,
        // merge, then compare against a *different* graph.
        let (g, _) = paper_example();
        let g2 = labelled_path(5, 2);
        let db = InvertedDb::build(&g, CoresetMode::SingleValue, GainPolicy::Total);
        assert!(!verify_lossless(&g2, &db).is_empty());
    }
}
