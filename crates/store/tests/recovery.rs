//! Crash-recovery property suite: every byte of every store write,
//! under every fault flavour, must recover to a state the in-memory
//! session actually passed through.
//!
//! The harness is deterministic — [`Fault`]s fire at scripted byte
//! offsets, not timers — so the sweeps below literally enumerate the
//! injection points:
//!
//! * **WAL append** (`Kill`/`Truncate`/`Flip` at `0..record_len`):
//!   the damaged record must be dropped and the reopened session must
//!   be bit-identical to the *pre-delta* in-memory session.
//! * **snapshot write** (same sweep over the whole file): a `Kill`
//!   before the atomic rename must preserve the *pre-checkpoint*
//!   state exactly; lying-fsync damage (`Truncate`/`Flip` that
//!   "succeed") must be *detected* — a typed refusal, an explicit
//!   fallback, or a salvaged graph that still mines bit-identically —
//!   never a silent wrong answer, never a panic.
//! * **WAL reset** (the checkpoint's second half): any fault lands in
//!   the crash window where the new snapshot already exists; recovery
//!   must land on the *post-checkpoint* state with an empty log.
//!
//! The fixture graph and deltas derive from `CSPM_FAULT_SEED` (CI runs
//! a seed matrix); the reference states come from a plain
//! [`MiningSession`] fed the same graph and deltas in memory.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use cspm_core::engine::CspmResult;
use cspm_core::{Miner, MiningSession, ProgressObserver};
use cspm_graph::dynamic::{DeltaVertex, GraphDelta};
use cspm_graph::{AttributedGraph, GraphBuilder};
use cspm_store::{Durable, DurableSession, Fault, FaultTarget, RecoveryOutcome, StoreError};

fn seed() -> u64 {
    std::env::var("CSPM_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC5F1)
}

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Seed-derived base graph: a ring (connectivity) plus random chords,
/// attributes drawn from a small pool so stars actually repeat.
fn fixture_graph(state: &mut u64) -> AttributedGraph {
    const POOL: [&str; 6] = ["a", "b", "c", "d", "e", "f"];
    let n = 8 + (xorshift(state) % 5) as u32;
    let mut b = GraphBuilder::new();
    for _ in 0..n {
        let first = POOL[(xorshift(state) % 6) as usize];
        let second = POOL[(xorshift(state) % 6) as usize];
        if first == second {
            b.add_vertex([first]);
        } else {
            b.add_vertex([first, second]);
        }
    }
    for v in 0..n {
        b.add_edge(v, (v + 1) % n).unwrap();
    }
    for _ in 0..n / 2 {
        let u = (xorshift(state) % n as u64) as u32;
        let v = (xorshift(state) % n as u64) as u32;
        if u != v {
            let _ = b.add_edge(u, v);
        }
    }
    b.build().unwrap()
}

/// Seed-derived delta: one new vertex wired to 1–2 existing ones,
/// plus churn — a guaranteed ring-edge removal (so every seed logs a
/// churn record and sweeps the churn WAL kind), and seed-dependent
/// label changes / vertex detachment. Removal targets are base ids
/// and absent targets no-op at apply, so any two fixture deltas stay
/// valid in either order.
fn fixture_delta(state: &mut u64, base_vertices: u32) -> GraphDelta {
    const POOL: [&str; 6] = ["a", "b", "c", "d", "e", "f"];
    let mut d = GraphDelta::new();
    let attr = POOL[(xorshift(state) % 6) as usize];
    let v = d.add_vertex([attr, "new"]);
    let u = (xorshift(state) % base_vertices as u64) as u32;
    d.add_edge(v, DeltaVertex::Existing(u));
    if xorshift(state).is_multiple_of(2) {
        let w = (xorshift(state) % base_vertices as u64) as u32;
        if w != u {
            d.add_edge(v, DeltaVertex::Existing(w));
        }
    }
    let r = (xorshift(state) % base_vertices as u64) as u32;
    d.remove_edge(r, (r + 1) % base_vertices);
    if xorshift(state).is_multiple_of(2) {
        let t = (xorshift(state) % base_vertices as u64) as u32;
        let old = POOL[(xorshift(state) % 6) as usize];
        let new = POOL[(xorshift(state) % 6) as usize];
        if old != new {
            d.change_label(t, old, new);
        }
    }
    if xorshift(state).is_multiple_of(4) {
        d.remove_vertex((xorshift(state) % base_vertices as u64) as u32);
    }
    d
}

fn temp_path(name: &str) -> PathBuf {
    static UNIQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join("cspm-store-recovery");
    fs::create_dir_all(&dir).unwrap();
    let n = UNIQ.fetch_add(1, Ordering::Relaxed);
    dir.join(format!("{name}-{}-{n}.css", std::process::id()))
}

/// One a-star flattened for exact comparison: coreset, leafset,
/// positions, frequency, and the code length's raw float bits.
type AstarDigest = (Vec<u32>, Vec<u32>, Vec<u32>, u64, u64);

/// Mined-model digest with floats as bits: the bit-identity yardstick.
fn digest(res: &CspmResult) -> Vec<AstarDigest> {
    res.model
        .astars()
        .iter()
        .map(|m| {
            (
                m.astar.coreset().to_vec(),
                m.astar.leafset().to_vec(),
                m.positions.clone(),
                m.frequency,
                m.code_len.to_bits(),
            )
        })
        .collect()
}

struct RunToEnd;
impl ProgressObserver for RunToEnd {
    fn on_iteration(&mut self, _: &cspm_core::IterationStat) -> std::ops::ControlFlow<()> {
        std::ops::ControlFlow::Continue(())
    }
}

/// One in-memory reference state: the graph and the mining digest a
/// correct recovery must reproduce bit-for-bit.
struct Reference {
    graph: AttributedGraph,
    digest: Vec<AstarDigest>,
    dl_bits: u64,
}

impl Reference {
    fn of(session: &mut MiningSession) -> Self {
        let res = session.run_with(&mut RunToEnd).unwrap();
        Self {
            graph: session.graph().unwrap().clone(),
            digest: digest(&res),
            dl_bits: res.final_dl.to_bits(),
        }
    }

    /// Asserts the reopened durable session is bit-identical to this
    /// reference.
    fn assert_matches(&self, durable: &mut DurableSession, label: &str) {
        assert_eq!(
            durable.session().graph(),
            Some(&self.graph),
            "{label}: recovered graph diverged"
        );
        let res = durable.run().unwrap();
        assert_eq!(
            res.final_dl.to_bits(),
            self.dl_bits,
            "{label}: final DL diverged"
        );
        assert_eq!(digest(&res), self.digest, "{label}: mined model diverged");
    }
}

/// The shared scenario: a mined + checkpointed store with one logged
/// delta (`d0`), one further delta (`d1`) to inject faults around, and
/// in-memory references for both states.
struct Scenario {
    graph: AttributedGraph,
    d0: GraphDelta,
    d1: GraphDelta,
    pre: Reference,
    post: Reference,
    /// Pristine store files after mine + stage(d0): snapshot + WAL.
    snapshot: Vec<u8>,
    wal: Vec<u8>,
}

impl Scenario {
    fn build() -> Self {
        let mut state = seed();
        let graph = fixture_graph(&mut state);
        let d0 = fixture_delta(&mut state, graph.vertex_count() as u32);
        // d1 connects only to base vertices, so it applies no matter
        // whether d0 made it — both orders are valid sessions.
        let d1 = fixture_delta(&mut state, graph.vertex_count() as u32);

        let mut reference = Miner::new().threads(1).build();
        reference.mine(&graph);
        reference.stage_delta(&d0).unwrap();
        let pre = Reference::of(&mut reference);
        reference.stage_delta(&d1).unwrap();
        let post = Reference::of(&mut reference);

        // Materialise the pristine store once; sweeps copy the bytes.
        let path = temp_path("scenario");
        let mut durable = Miner::new().threads(1).durable(&path).unwrap();
        durable.mine(&graph).unwrap();
        durable.stage_delta(&d0).unwrap();
        let snapshot = fs::read(durable.store().path()).unwrap();
        let wal = fs::read(durable.store().wal_path()).unwrap();
        drop(durable);

        Self {
            graph,
            d0,
            d1,
            pre,
            post,
            snapshot,
            wal,
        }
    }

    /// Lays the pristine files down at a fresh path and opens them.
    fn open_fresh_copy(&self, name: &str) -> (PathBuf, DurableSession) {
        let path = temp_path(name);
        fs::write(&path, &self.snapshot).unwrap();
        let mut wal_path = path.clone().into_os_string();
        wal_path.push(".wal");
        fs::write(PathBuf::from(wal_path), &self.wal).unwrap();
        let durable = Miner::new().threads(1).durable(&path).unwrap();
        assert_eq!(
            *durable.recovery(),
            RecoveryOutcome::Clean { wal_records: 1 },
            "pristine copy must open clean"
        );
        (path, durable)
    }

    fn reopen(&self, path: &PathBuf) -> DurableSession {
        Miner::new().threads(1).durable(path).unwrap()
    }
}

/// Byte length of one WAL append batch for `d1` (frame overhead + the
/// serialized delta).
fn append_len(sc: &Scenario) -> u64 {
    let (path, mut durable) = sc.open_fresh_copy("measure");
    let before = durable.stats().wal_bytes;
    durable.stage_delta(&sc.d1).unwrap();
    let after = durable.stats().wal_bytes;
    drop(durable);
    let _ = path;
    after - before
}

/// Byte length of the snapshot a checkpoint writes (the *post-d0*
/// state — churn in `d0` can make it shorter than the pristine file,
/// so the snapshot sweeps must measure it rather than assume it).
fn checkpoint_snapshot_len(sc: &Scenario) -> u64 {
    let (path, mut durable) = sc.open_fresh_copy("measure-snapshot");
    durable.checkpoint().unwrap();
    drop(durable);
    fs::metadata(&path).unwrap().len()
}

#[test]
fn wal_append_fault_sweep_recovers_pre_delta_state() {
    let sc = Scenario::build();
    let len = append_len(&sc);
    assert!(len > 0);

    for at in 0..len {
        for fault in [
            Fault::Kill { at },
            Fault::Truncate { at },
            Fault::Flip { at },
        ] {
            let label = format!("append {fault:?}");
            let (path, mut durable) = sc.open_fresh_copy("append");
            durable.store_mut().arm_fault(FaultTarget::WalAppend, fault);
            let staged = durable.stage_delta(&sc.d1);
            match fault {
                // The injected crash surfaces; the torn batch is
                // trimmed so the in-process log stays consistent.
                Fault::Kill { .. } => assert!(staged.is_err(), "{label}: kill must surface"),
                // Lying-fsync flavours report success.
                _ => assert!(staged.is_ok(), "{label}: silent faults must not error"),
            }
            drop(durable);

            let mut reopened = sc.reopen(&path);
            assert!(
                !matches!(
                    reopened.recovery(),
                    RecoveryOutcome::SnapshotFallback { .. }
                ),
                "{label}: snapshot must be untouched by WAL damage"
            );
            assert_eq!(
                reopened.store().wal_records(),
                1,
                "{label}: d0 must survive, damaged d1 must be dropped"
            );
            sc.pre.assert_matches(&mut reopened, &label);
        }
    }
}

#[test]
fn snapshot_kill_sweep_preserves_pre_checkpoint_state_exactly() {
    let sc = Scenario::build();
    let len = checkpoint_snapshot_len(&sc);
    // Kill at every byte of the temp-file write: the rename never
    // happens, so the old snapshot + WAL must read back untouched.
    for at in 0..len {
        let label = format!("snapshot kill@{at}");
        let (path, mut durable) = sc.open_fresh_copy("snapkill");
        durable
            .store_mut()
            .arm_fault(FaultTarget::Snapshot, Fault::Kill { at });
        assert!(durable.checkpoint().is_err(), "{label}: kill must surface");
        drop(durable);

        let mut reopened = sc.reopen(&path);
        assert_eq!(
            *reopened.recovery(),
            RecoveryOutcome::Clean { wal_records: 1 },
            "{label}: old snapshot + log must be intact"
        );
        sc.pre.assert_matches(&mut reopened, &label);
    }
}

#[test]
fn snapshot_silent_damage_sweep_is_always_detected() {
    let sc = Scenario::build();
    let len = checkpoint_snapshot_len(&sc);
    for at in 0..len {
        for fault in [Fault::Truncate { at }, Fault::Flip { at }] {
            let label = format!("snapshot {fault:?}");
            let (path, mut durable) = sc.open_fresh_copy("snapsilent");
            durable.store_mut().arm_fault(FaultTarget::Snapshot, fault);
            // The write lies about durability, so the checkpoint
            // itself reports success and renames the damaged file in.
            durable.checkpoint().expect("silent faults must not error");
            drop(durable);

            // Recovery must *notice*. Three shapes are legitimate:
            // a typed refusal (damaged magic/version bytes), an
            // explicit snapshot fallback, or a salvaged state that
            // still mines bit-identically to the checkpointed session
            // (graph + d0). A silent wrong answer is the one forbidden
            // outcome — and a panic anywhere fails the test harness.
            match Miner::new().threads(1).durable(&path) {
                Err(StoreError::Magic { .. }) | Err(StoreError::Version { .. }) => {}
                Err(e) => panic!("{label}: unexpected hard error {e}"),
                Ok(mut reopened) => match reopened.recovery().clone() {
                    RecoveryOutcome::SnapshotFallback { .. } => {
                        assert!(reopened.session().graph().is_none(), "{label}");
                    }
                    RecoveryOutcome::Fresh => panic!("{label}: store vanished"),
                    _ => sc.pre.assert_matches(&mut reopened, &label),
                },
            }
        }
    }
}

#[test]
fn wal_reset_fault_sweep_recovers_post_checkpoint_state() {
    let sc = Scenario::build();
    // The reset file is header + generation frame; measure it from a
    // clean checkpoint.
    let reset_len = {
        let (_, mut durable) = sc.open_fresh_copy("measure-reset");
        durable.checkpoint().unwrap();
        durable.stats().wal_bytes
    };

    for at in 0..reset_len {
        for fault in [
            Fault::Kill { at },
            Fault::Truncate { at },
            Fault::Flip { at },
        ] {
            let label = format!("wal-reset {fault:?}");
            let (path, mut durable) = sc.open_fresh_copy("reset");
            durable.store_mut().arm_fault(FaultTarget::WalReset, fault);
            let checkpointed = durable.checkpoint();
            if matches!(fault, Fault::Kill { .. }) {
                assert!(checkpointed.is_err(), "{label}: kill must surface");
            }
            drop(durable);

            // Whatever happened to the log, the snapshot rename came
            // first: recovery must land on the post-checkpoint state
            // (d0 folded in) with an empty, working log.
            let mut reopened = sc.reopen(&path);
            assert!(
                !matches!(
                    reopened.recovery(),
                    RecoveryOutcome::SnapshotFallback { .. }
                ),
                "{label}: snapshot must be valid"
            );
            assert_eq!(reopened.store().wal_records(), 0, "{label}");
            sc.pre.assert_matches(&mut reopened, &label);
            // The recovered log accepts appends again.
            reopened.stage_delta(&sc.d1).unwrap();
            drop(reopened);
            let mut after = sc.reopen(&path);
            sc.post.assert_matches(&mut after, &format!("{label} + d1"));
        }
    }
}

#[test]
fn wal_unavailable_after_failed_reset_until_checkpoint_heals() {
    let sc = Scenario::build();
    let (path, mut durable) = sc.open_fresh_copy("unavailable");
    durable
        .store_mut()
        .arm_fault(FaultTarget::WalReset, Fault::Kill { at: 0 });
    assert!(durable.checkpoint().is_err());

    // The snapshot advanced but the log could not be rewritten:
    // appends must be refused (they would be ignored by recovery),
    // and a clean checkpoint must repair the store.
    let err = durable.stage_delta(&sc.d1).unwrap_err();
    assert!(matches!(
        err,
        cspm_store::DurableError::Store(StoreError::WalUnavailable)
    ));
    durable.checkpoint().unwrap();
    durable.stage_delta(&sc.d1).unwrap();
    drop(durable);
    let mut reopened = sc.reopen(&path);
    // d0 was staged before the sweep scenario; d1 twice now — once
    // rejected, once logged. The reference is pre + d1 applied twice?
    // No: the refused stage *did* reach the session but not the log,
    // and the healing checkpoint then persisted it. So the recovered
    // state is pre + d1 + d1 — compare against a fresh in-memory
    // replay of exactly that history.
    let mut reference = Miner::new().threads(1).build();
    reference.mine(&sc.graph);
    reference.stage_delta(&sc.d0).unwrap();
    reference.stage_delta(&sc.d1).unwrap();
    reference.stage_delta(&sc.d1).unwrap();
    Reference::of(&mut reference).assert_matches(&mut reopened, "healed store");
}

#[test]
fn version_1_files_without_churn_records_still_replay() {
    // A store written by the previous binary: additive-only deltas and
    // version-1 headers. The body formats are unchanged between v1 and
    // v2, so rewriting the version fields of a v2 additive-only store
    // reproduces the old files byte-for-byte. They must open clean and
    // mine bit-identically — the version bump gates *churn* records,
    // not old logs.
    let mut state = seed();
    let graph = fixture_graph(&mut state);
    let mut additive = GraphDelta::new();
    let v = additive.add_vertex(["a", "new"]);
    additive.add_edge(v, DeltaVertex::Existing(0));
    assert!(!additive.has_churn());

    let mut reference = Miner::new().threads(1).build();
    reference.mine(&graph);
    reference.stage_delta(&additive).unwrap();
    let expect = Reference::of(&mut reference);

    let path = temp_path("v1-compat");
    let mut durable = Miner::new().threads(1).durable(&path).unwrap();
    durable.mine(&graph).unwrap();
    durable.stage_delta(&additive).unwrap();
    let wal_path = durable.store().wal_path().to_path_buf();
    drop(durable);

    for file in [&path, &wal_path] {
        let mut bytes = fs::read(file).unwrap();
        bytes[4..6].copy_from_slice(&1u16.to_le_bytes());
        fs::write(file, bytes).unwrap();
    }

    let mut reopened = Miner::new().threads(1).durable(&path).unwrap();
    assert_eq!(
        *reopened.recovery(),
        RecoveryOutcome::Clean { wal_records: 1 },
        "version-1 files must replay clean"
    );
    expect.assert_matches(&mut reopened, "v1 compat");
}

#[test]
fn fault_sweep_scenario_is_seed_stable() {
    // The scenario builder must be deterministic for a fixed seed —
    // the CI matrix relies on CSPM_FAULT_SEED selecting *different*
    // sweeps, and reproducibility relies on the same seed selecting
    // the *same* one.
    let a = Scenario::build();
    let b = Scenario::build();
    assert_eq!(a.graph, b.graph);
    assert_eq!(a.snapshot, b.snapshot);
    assert_eq!(a.wal, b.wal);
    assert_eq!(a.d0.to_bytes(), b.d0.to_bytes());
    assert_eq!(a.d1.to_bytes(), b.d1.to_bytes());
}
