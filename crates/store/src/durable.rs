//! A [`MiningSession`] that survives process death.
//!
//! [`DurableSession`] pairs a live session with a [`SessionStore`]:
//! opening recovers whatever the store holds (snapshot + WAL replay,
//! warm database restore when the stored rows validate), mining
//! checkpoints the result, and staged deltas are logged before the
//! call returns. The spelling is one word on the builder:
//!
//! ```no_run
//! use cspm_core::Miner;
//! use cspm_store::Durable;
//!
//! let mut session = Miner::new().durable("pokec.css")?;
//! # Ok::<(), cspm_store::StoreError>(())
//! ```
//!
//! # Consistency contract
//!
//! A crash at *any* point leaves the store recoverable to a state the
//! in-memory session actually passed through: staged deltas are
//! applied to the session first and logged second, so a crash between
//! the two recovers the pre-delta state; checkpoints are atomic
//! renames, so a crash recovers either the old or the new snapshot
//! (the WAL's generation stamp keeps a stale log from replaying onto
//! a new snapshot). The fault-injection suite in `tests/` sweeps every
//! byte of every write under kill/truncate/flip faults and asserts
//! exactly this.
//!
//! Recovery anomalies — a truncated WAL tail, a snapshot fallback, a
//! warm database that had to be rebuilt — are reported through
//! [`ProgressObserver::on_warning`] at open and kept queryable on the
//! session ([`DurableSession::recovery`],
//! [`DurableSession::db_rebuilt`]).

use std::ops::ControlFlow;
use std::path::Path;

use cspm_core::engine::CspmResult;
use cspm_core::{
    CspmConfig, DeltaStats, InvertedDb, IterationStat, Miner, MiningSession, ProgressObserver,
    SessionError,
};
use cspm_graph::dynamic::GraphDelta;
use cspm_graph::AttributedGraph;

use crate::{RecoveryOutcome, SessionStore, StoreError, StoreStats};

/// Why a durable-session call failed: the store or the session half.
#[derive(Debug)]
pub enum DurableError {
    /// The persistence layer failed (I/O, refused file). The
    /// in-memory session may be *ahead* of the store — a successful
    /// [`DurableSession::checkpoint`] resynchronises them.
    Store(StoreError),
    /// The session rejected the call ([`SessionError`] semantics,
    /// including the applied-prefix contract for delta batches).
    Session(SessionError),
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Store(e) => write!(f, "durable session store failure: {e}"),
            Self::Session(e) => write!(f, "durable session failure: {e}"),
        }
    }
}

impl std::error::Error for DurableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Store(e) => Some(e),
            Self::Session(e) => Some(e),
        }
    }
}

impl From<StoreError> for DurableError {
    fn from(e: StoreError) -> Self {
        Self::Store(e)
    }
}

impl From<SessionError> for DurableError {
    fn from(e: SessionError) -> Self {
        Self::Session(e)
    }
}

/// Observer that runs to completion and swallows warnings.
struct Quiet;

impl ProgressObserver for Quiet {
    fn on_iteration(&mut self, _stat: &IterationStat) -> ControlFlow<()> {
        ControlFlow::Continue(())
    }
}

/// A [`MiningSession`] backed by a [`SessionStore`]. See the
/// [module docs](self) for the consistency contract.
#[derive(Debug)]
pub struct DurableSession {
    session: MiningSession,
    store: SessionStore,
    config: CspmConfig,
    recovery: RecoveryOutcome,
    db_rebuilt: Option<String>,
    staged_since_checkpoint: usize,
    checkpoint_every: usize,
}

impl DurableSession {
    /// Deltas staged between automatic checkpoints (tunable with
    /// [`Self::set_checkpoint_every`]). Every checkpoint rewrites the
    /// whole snapshot, so "every delta" would turn O(1) appends into
    /// O(graph) rewrites; a small batch keeps replay-on-open short
    /// without that.
    pub const DEFAULT_CHECKPOINT_EVERY: usize = 64;

    /// Opens the store at `path` and builds the session from it:
    /// fresh when nothing is there, warm-restored when the snapshot's
    /// database section validates against `miner`'s configuration,
    /// cold-rebuilt from the stored graph otherwise. Valid WAL deltas
    /// are replayed on top.
    pub fn open(miner: Miner, path: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::open_with(miner, path, &mut Quiet)
    }

    /// [`Self::open`], reporting recovery anomalies (WAL truncation,
    /// snapshot fallback, cold database rebuilds) to `observer` via
    /// [`ProgressObserver::on_warning`] as they are discovered.
    pub fn open_with(
        miner: Miner,
        path: impl AsRef<Path>,
        observer: &mut dyn ProgressObserver,
    ) -> Result<Self, StoreError> {
        let config = *miner.config();
        let mut session = miner.build();
        let (mut store, recovered) = SessionStore::open(path)?;
        let mut recovery = recovered.outcome;
        let mut db_rebuilt = None;

        if let RecoveryOutcome::SnapshotFallback { detail } = &recovery {
            observer.on_warning(&format!(
                "store snapshot unusable ({detail}); starting over — re-mine to rebuild it"
            ));
        }

        if let Some(state) = recovered.state {
            let stored_config_matches =
                state.mode == Some(config.coreset_mode) && state.gain == Some(config.gain_policy);
            let mut rebuild_reason = None;
            let warm = if !stored_config_matches {
                rebuild_reason =
                    Some("store was checkpointed under a different configuration".to_string());
                None
            } else if let Some(section) = state.db {
                match InvertedDb::from_pristine_rows(
                    &state.graph,
                    config.gain_policy,
                    section.iter(),
                ) {
                    Ok(db) => Some(db),
                    Err(e) => {
                        rebuild_reason = Some(e.to_string());
                        None
                    }
                }
            } else {
                // No section is the *expected* shape for multi-value
                // modes; it only deserves a warning when damage ate it.
                rebuild_reason = state.db_note;
                None
            };
            if let Some(reason) = &rebuild_reason {
                observer.on_warning(&format!(
                    "warm database unavailable ({reason}); rebuilding from the stored graph"
                ));
                db_rebuilt = rebuild_reason.clone();
            }
            let db = match warm {
                Some(db) => db,
                None => InvertedDb::build(&state.graph, config.coreset_mode, config.gain_policy),
            };
            session.restore(state.graph, db);

            if !state.deltas.is_empty() {
                match session.stage_deltas(&state.deltas) {
                    Ok(_) => {}
                    Err(SessionError::Delta { index, source }) => {
                        // A logged delta that no longer applies is
                        // corruption the checksums cannot see (it was
                        // *written* wrong). Same policy as a torn
                        // tail: keep the applied prefix, drop the rest.
                        let dropped = store.rewrite_wal(&state.deltas[..index])?;
                        observer.on_warning(&format!(
                            "WAL record #{index} does not apply ({source}); log truncated to the {index} records before it"
                        ));
                        let prior = match recovery {
                            RecoveryOutcome::TailTruncated { dropped_bytes, .. } => dropped_bytes,
                            _ => 0,
                        };
                        recovery = RecoveryOutcome::TailTruncated {
                            wal_records: index,
                            dropped_bytes: prior + dropped,
                        };
                    }
                    Err(e @ (SessionError::Empty | SessionError::NoGraph)) => {
                        unreachable!("session was restored just above: {e}")
                    }
                }
            }
        }

        Ok(Self {
            session,
            store,
            config,
            recovery,
            db_rebuilt,
            staged_since_checkpoint: 0,
            checkpoint_every: Self::DEFAULT_CHECKPOINT_EVERY,
        })
    }

    /// How the open went — `cspm stats --store` reports this verbatim.
    pub fn recovery(&self) -> &RecoveryOutcome {
        &self.recovery
    }

    /// Why the warm database restore was skipped at open (if it was):
    /// config mismatch, damaged section, or rejected rows.
    pub fn db_rebuilt(&self) -> Option<&str> {
        self.db_rebuilt.as_deref()
    }

    /// The inner session, read-only. All mutation goes through the
    /// durable entry points so the store can keep up.
    pub fn session(&self) -> &MiningSession {
        &self.session
    }

    /// The backing store (paths, generation, [`Self::stats`] source).
    pub fn store(&self) -> &SessionStore {
        &self.store
    }

    /// The backing store, mutably — for
    /// [`arm_fault`](SessionStore::arm_fault) in tests.
    pub fn store_mut(&mut self) -> &mut SessionStore {
        &mut self.store
    }

    /// File sizes, generation and WAL position.
    pub fn stats(&self) -> StoreStats {
        self.store.stats()
    }

    /// Sets the auto-checkpoint threshold: a checkpoint is taken after
    /// `every` staged deltas. `0` disables auto-checkpointing (the log
    /// then grows until an explicit [`Self::checkpoint`]).
    pub fn set_checkpoint_every(&mut self, every: usize) {
        self.checkpoint_every = every;
    }

    /// Staged deltas since the last checkpoint (the auto-checkpoint
    /// counter, equal to the store's WAL record count in steady state).
    pub fn staged_since_checkpoint(&self) -> usize {
        self.staged_since_checkpoint
    }

    /// Snapshots the session's current graph + database and resets the
    /// WAL. No-op state-wise, durable bytes-wise.
    pub fn checkpoint(&mut self) -> Result<(), DurableError> {
        let graph = self
            .session
            .graph()
            .ok_or(DurableError::Session(SessionError::Empty))?;
        self.store.checkpoint(
            graph,
            self.session.pristine_db(),
            self.config.coreset_mode,
            self.config.gain_policy,
        )?;
        self.staged_since_checkpoint = 0;
        Ok(())
    }

    /// Cold-loads `g` and checkpoints it — durability without mining.
    /// A serving daemon opens tenants this way: the graph is on disk
    /// (and the WAL reset) immediately, while the first mine happens
    /// whenever the tenant asks for it.
    pub fn load(&mut self, g: &AttributedGraph) -> Result<(), DurableError> {
        self.session.load(g);
        self.checkpoint()
    }

    /// Compacts the retained posting arena in place (no store traffic;
    /// the next checkpoint simply snapshots the denser arena).
    pub fn compact_now(&mut self) {
        self.session.compact_now();
    }

    /// Mines `g` and checkpoints the loaded session, so the next open
    /// is warm. Equivalent to [`MiningSession::mine`] + durability.
    pub fn mine(&mut self, g: &AttributedGraph) -> Result<CspmResult, DurableError> {
        self.mine_with(g, &mut Quiet)
    }

    /// [`Self::mine`] with a progress observer.
    pub fn mine_with(
        &mut self,
        g: &AttributedGraph,
        observer: &mut dyn ProgressObserver,
    ) -> Result<CspmResult, DurableError> {
        let result = self.session.mine_with(g, observer);
        self.checkpoint()?;
        Ok(result)
    }

    /// Re-runs the merge loop on the retained (possibly
    /// delta-patched) database. Pure compute — no store traffic.
    pub fn run(&mut self) -> Result<CspmResult, DurableError> {
        self.run_with(&mut Quiet)
    }

    /// [`Self::run`] with a progress observer.
    pub fn run_with(
        &mut self,
        observer: &mut dyn ProgressObserver,
    ) -> Result<CspmResult, DurableError> {
        Ok(self.session.run_with(observer)?)
    }

    /// Stages one delta durably: applied to the session, appended to
    /// the WAL, auto-checkpointed past the threshold.
    pub fn stage_delta(&mut self, delta: &GraphDelta) -> Result<DeltaStats, DurableError> {
        self.stage_deltas(std::slice::from_ref(delta))
    }

    /// Stages a batch durably. The session's applied-prefix contract
    /// carries over: on [`SessionError::Delta`] `{ index, .. }` every
    /// delta before `index` is both applied *and* logged. A
    /// [`DurableError::Store`] means the append itself failed — the
    /// session is then ahead of the log, and a successful
    /// [`Self::checkpoint`] reconverges the two.
    pub fn stage_deltas(&mut self, deltas: &[GraphDelta]) -> Result<DeltaStats, DurableError> {
        if !self.session.is_loaded() {
            return Err(SessionError::Empty.into());
        }
        if self.session.graph().is_none() {
            return Err(SessionError::NoGraph.into());
        }
        // A WAL needs a snapshot to replay onto; make generation 1
        // exist before the first logged delta.
        if self.store.generation() == 0 {
            self.checkpoint()?;
        }
        let result = self.session.stage_deltas(deltas);
        let applied = match &result {
            Ok(_) => deltas,
            Err(SessionError::Delta { index, .. }) => &deltas[..*index],
            Err(_) => &deltas[..0],
        };
        self.store.append_deltas(applied)?;
        self.staged_since_checkpoint += applied.len();
        if self.checkpoint_every > 0 && self.staged_since_checkpoint >= self.checkpoint_every {
            self.checkpoint()?;
        }
        result.map_err(DurableError::Session)
    }

    /// Stage-and-mine convenience: stages `delta` durably, then
    /// re-runs the merge loop warm.
    pub fn apply_delta(&mut self, delta: &GraphDelta) -> Result<CspmResult, DurableError> {
        self.stage_delta(delta)?;
        self.run()
    }
}

/// Extension trait putting the durable spelling on [`Miner`]:
/// `Miner::new().durable(path)?`.
pub trait Durable {
    /// Builds the session and binds it to the store at `path`,
    /// recovering whatever state is there. See [`DurableSession`].
    fn durable(self, path: impl AsRef<Path>) -> Result<DurableSession, StoreError>;
}

impl Durable for Miner {
    fn durable(self, path: impl AsRef<Path>) -> Result<DurableSession, StoreError> {
        DurableSession::open(self, path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{Fault, FaultTarget};
    use cspm_graph::dynamic::DeltaVertex;
    use cspm_graph::fixtures::paper_example;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_store(name: &str) -> PathBuf {
        static UNIQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join("cspm-store-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let n = UNIQ.fetch_add(1, Ordering::Relaxed);
        dir.join(format!("durable-{name}-{}-{n}.css", std::process::id()))
    }

    fn grow_delta(i: u32) -> GraphDelta {
        let mut d = GraphDelta::new();
        let v = d.add_vertex(["a", "d"]);
        d.add_edge(v, DeltaVertex::Existing(i % 4));
        d
    }

    type AstarDigest = (Vec<u32>, Vec<u32>, Vec<u32>, u64, u64);

    /// Every mined a-star flattened to comparable fields, floats as
    /// bits — the "bit-identical" claim, not a tolerance.
    fn model_digest(res: &CspmResult) -> Vec<AstarDigest> {
        res.model
            .astars()
            .iter()
            .map(|m| {
                (
                    m.astar.coreset().to_vec(),
                    m.astar.leafset().to_vec(),
                    m.positions.clone(),
                    m.frequency,
                    m.code_len.to_bits(),
                )
            })
            .collect()
    }

    #[test]
    fn mine_checkpoint_reopen_is_bit_identical() {
        let path = temp_store("warm");
        let (g, _) = paper_example();

        let mut durable = Miner::new().threads(1).durable(&path).unwrap();
        assert_eq!(*durable.recovery(), RecoveryOutcome::Fresh);
        let cold = durable.mine(&g).unwrap();
        drop(durable);

        let mut reopened = Miner::new().threads(1).durable(&path).unwrap();
        assert_eq!(
            *reopened.recovery(),
            RecoveryOutcome::Clean { wal_records: 0 }
        );
        assert!(reopened.db_rebuilt().is_none());
        assert_eq!(reopened.session().graph(), Some(&g));
        let warm = reopened.run().unwrap();
        assert_eq!(warm.final_dl.to_bits(), cold.final_dl.to_bits());
        assert_eq!(model_digest(&warm), model_digest(&cold));
    }

    #[test]
    fn staged_deltas_survive_reopen() {
        let path = temp_store("deltas");
        let (g, _) = paper_example();

        // In-memory reference: same mine + deltas, no persistence.
        let mut reference = Miner::new().threads(1).build();
        reference.mine(&g);

        let mut durable = Miner::new().threads(1).durable(&path).unwrap();
        durable.mine(&g).unwrap();
        for i in 0..3 {
            let d = grow_delta(i);
            reference.stage_delta(&d).unwrap();
            durable.stage_delta(&d).unwrap();
        }
        assert_eq!(durable.store().wal_records(), 3);
        drop(durable);

        let mut reopened = Miner::new().threads(1).durable(&path).unwrap();
        assert_eq!(
            *reopened.recovery(),
            RecoveryOutcome::Clean { wal_records: 3 }
        );
        assert_eq!(reopened.session().graph(), Some(reference.graph().unwrap()));
        let a = reopened.run().unwrap();
        let b = reference.run_with(&mut Quiet).unwrap();
        assert_eq!(a.final_dl.to_bits(), b.final_dl.to_bits());
        assert_eq!(model_digest(&a), model_digest(&b));
    }

    #[test]
    fn auto_checkpoint_folds_the_log() {
        let path = temp_store("auto");
        let (g, _) = paper_example();
        let mut durable = Miner::new().threads(1).durable(&path).unwrap();
        durable.set_checkpoint_every(2);
        durable.mine(&g).unwrap();
        durable.stage_delta(&grow_delta(0)).unwrap();
        assert_eq!(durable.store().wal_records(), 1);
        durable.stage_delta(&grow_delta(1)).unwrap();
        // Threshold hit: log folded into generation 3 (mine = 1, +2).
        assert_eq!(durable.store().wal_records(), 0);
        assert_eq!(durable.store().generation(), 2);
        assert_eq!(durable.staged_since_checkpoint(), 0);
    }

    #[test]
    fn config_mismatch_rebuilds_cold_but_keeps_graph() {
        let path = temp_store("config");
        let (g, _) = paper_example();
        let mut durable = Miner::new().threads(1).durable(&path).unwrap();
        let total = durable.mine(&g).unwrap();
        drop(durable);

        let mut other = Miner::new()
            .threads(1)
            .gain_policy(cspm_core::GainPolicy::DataOnly)
            .durable(&path)
            .unwrap();
        assert!(other.db_rebuilt().is_some());
        assert_eq!(other.session().graph(), Some(&g));
        let data_only = other.run().unwrap();
        // Same graph, genuinely different accounting.
        assert!(data_only.final_dl.to_bits() != total.final_dl.to_bits());
    }

    #[test]
    fn stage_on_empty_session_is_refused() {
        let path = temp_store("empty");
        let mut durable = Miner::new().durable(&path).unwrap();
        let err = durable.stage_delta(&grow_delta(0)).unwrap_err();
        assert!(matches!(err, DurableError::Session(SessionError::Empty)));
    }

    #[test]
    fn failed_append_leaves_session_ahead_and_checkpoint_heals() {
        let path = temp_store("heal");
        let (g, _) = paper_example();
        let mut durable = Miner::new().threads(1).durable(&path).unwrap();
        durable.mine(&g).unwrap();

        durable
            .store_mut()
            .arm_fault(FaultTarget::WalAppend, Fault::Kill { at: 4 });
        let err = durable.stage_delta(&grow_delta(0)).unwrap_err();
        assert!(matches!(err, DurableError::Store(StoreError::Io(_))));
        // The session absorbed the delta; the log did not.
        assert_eq!(durable.store().wal_records(), 0);
        let n = durable.session().graph().unwrap().vertex_count();

        // A checkpoint reconverges store and session.
        durable.checkpoint().unwrap();
        drop(durable);
        let reopened = Miner::new().threads(1).durable(&path).unwrap();
        assert_eq!(reopened.session().graph().unwrap().vertex_count(), n);
    }
}
