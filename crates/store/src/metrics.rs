//! Store metrics, registered once against the process-wide
//! [`cspm_telemetry::global`] registry.
//!
//! The store's hot costs are dominated by the filesystem — an fsync is
//! milliseconds where a counter bump is nanoseconds — so unlike the
//! engine (one seam per run) every durability point is instrumented
//! directly: each fsync is counted and timed, every WAL append adds
//! its batch bytes, checkpoints record wall time, and each
//! [`SessionStore::open`](crate::SessionStore::open) counts its
//! [`RecoveryOutcome`](crate::RecoveryOutcome) by kind.

use std::io;
use std::sync::OnceLock;
use std::time::Instant;

use cspm_telemetry::{global, Counter, Histogram, TIME_BUCKETS};

pub(crate) struct StoreMetrics {
    pub(crate) fsyncs: Counter,
    pub(crate) fsync_seconds: Histogram,
    pub(crate) wal_bytes: Counter,
    pub(crate) checkpoints: Counter,
    pub(crate) checkpoint_seconds: Histogram,
    rec_fresh: Counter,
    rec_clean: Counter,
    rec_tail_truncated: Counter,
    rec_snapshot_fallback: Counter,
}

impl StoreMetrics {
    /// The recovery counter for a [`RecoveryOutcome::label`] value.
    ///
    /// [`RecoveryOutcome::label`]: crate::RecoveryOutcome::label
    pub(crate) fn recovery(&self, label: &str) -> &Counter {
        match label {
            "fresh" => &self.rec_fresh,
            "clean" => &self.rec_clean,
            "tail-truncated" => &self.rec_tail_truncated,
            _ => &self.rec_snapshot_fallback,
        }
    }
}

pub(crate) fn store_metrics() -> &'static StoreMetrics {
    static METRICS: OnceLock<StoreMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = global();
        let recovery = |outcome| {
            r.counter_with(
                "cspm_store_recoveries_total",
                "Store opens by recovery outcome.",
                &[("outcome", outcome)],
            )
        };
        StoreMetrics {
            fsyncs: r.counter(
                "cspm_store_fsync_total",
                "fsync/fdatasync calls issued by the store (WAL, snapshot, directory).",
            ),
            fsync_seconds: r.histogram(
                "cspm_store_fsync_seconds",
                "Wall time per fsync/fdatasync call.",
                &TIME_BUCKETS,
            ),
            wal_bytes: r.counter(
                "cspm_store_wal_bytes_total",
                "Bytes appended to the delta WAL (framed batch size).",
            ),
            checkpoints: r.counter(
                "cspm_store_checkpoints_total",
                "Completed checkpoints (snapshot written, WAL reset).",
            ),
            checkpoint_seconds: r.histogram(
                "cspm_store_checkpoint_seconds",
                "Wall time per checkpoint, encode through WAL reset.",
                &TIME_BUCKETS,
            ),
            rec_fresh: recovery("fresh"),
            rec_clean: recovery("clean"),
            rec_tail_truncated: recovery("tail-truncated"),
            rec_snapshot_fallback: recovery("snapshot-fallback"),
        }
    })
}

/// Runs `sync` (an fsync-flavoured call), counting it and timing it
/// whether it succeeds or not — a failed fsync still hit the disk
/// queue, and its latency is exactly the kind worth seeing.
pub(crate) fn timed_fsync<T>(sync: impl FnOnce() -> io::Result<T>) -> io::Result<T> {
    let started = Instant::now();
    let res = sync();
    let m = store_metrics();
    m.fsyncs.inc();
    m.fsync_seconds.observe(started.elapsed().as_secs_f64());
    res
}
