//! Durable CSPM sessions: a crash-safe snapshot + delta WAL.
//!
//! A [`MiningSession`](cspm_core::MiningSession) holds its graph and
//! pristine inverted database only in memory; this crate persists that
//! state so a session survives process death. The on-disk shape (full
//! byte-level tables in `docs/FORMATS.md`) is the classic pair:
//!
//! * **snapshot** — one versioned file holding the whole session:
//!   graph (interned attribute tables included) and, for the
//!   single-value coreset mode, every database row with its posting
//!   slice written nearly verbatim from the arena. Snapshots are
//!   replaced atomically (temp file + fsync + rename), never edited.
//! * **WAL** — an append-only sidecar (`<path>.wal`) of
//!   [`GraphDelta`] records staged
//!   since the snapshot. Opening replays them; a checkpoint folds them
//!   into a fresh snapshot and resets the log.
//!
//! Every frame in both files carries a length-prefixed CRC-32 footer
//! ([`cspm_graph::codec`]), so recovery *detects* torn writes,
//! truncation, and bit-flips rather than reading garbage — and then
//! degrades deliberately instead of panicking:
//!
//! * a torn or corrupt WAL **tail** is truncated to the last valid
//!   record ([`RecoveryOutcome::TailTruncated`]);
//! * a corrupt or stale WAL **header** drops the whole log the same
//!   way (its generation ties it to exactly one snapshot — a log from
//!   another generation is a crash-window artifact, not data);
//! * a corrupt **snapshot** falls back to an empty store
//!   ([`RecoveryOutcome::SnapshotFallback`]) for the caller to rebuild
//!   cold — while a *foreign* file (wrong magic) or a *newer* format
//!   (version skew) is refused with a typed [`StoreError`] so we never
//!   silently clobber something that was not ours to manage.
//!
//! [`SessionStore`] is the file-level half: open/recover, checkpoint,
//! append. [`DurableSession`] (module [`durable`]) glues it to a live
//! `MiningSession` — `Miner::new().durable(path)?` via the [`Durable`]
//! extension trait. The [`fault`] module injects deterministic
//! kill/truncate/bit-flip faults at scripted byte offsets; the
//! crash-recovery property suite in `tests/` sweeps every injection
//! point and asserts reopening lands on the pre- or post-delta state.

pub mod durable;
pub mod fault;
mod metrics;

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use cspm_core::{CoresetMode, GainPolicy, InvertedDb};
use cspm_graph::codec::{
    put_u32, put_u64, read_frame, write_frame, DecodeError, FrameError, Reader,
};
use cspm_graph::dynamic::GraphDelta;
use cspm_graph::{decode_graph, encode_graph, AttributedGraph};

pub use durable::{Durable, DurableError, DurableSession};
pub use fault::{Fault, FaultFile, FaultTarget};

use metrics::{store_metrics, timed_fsync};

/// Snapshot file magic (`CSPS` — CSPM snapshot).
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"CSPS";
/// WAL file magic (`CSWL` — CSPM write-ahead log).
pub const WAL_MAGIC: [u8; 4] = *b"CSWL";
/// Store format version, shared by both files. Version 2 added the
/// churn WAL record (`TAG_DELTA_CHURN`) for deltas carrying
/// removals or label changes; version-1 files (additive records only)
/// still open and replay.
pub const STORE_VERSION: u16 = 2;

/// Snapshot frame: session metadata (generation, mode, gain policy).
const TAG_META: u8 = 0x01;
/// Snapshot frame: the attributed graph.
const TAG_GRAPH: u8 = 0x02;
/// Snapshot frame: the pristine database rows + posting arena.
const TAG_DB: u8 = 0x03;
/// WAL frame: the log's generation (must match the snapshot's).
const TAG_WAL_GEN: u8 = 0x10;
/// WAL frame: one serialized additive [`GraphDelta`].
const TAG_DELTA: u8 = 0x20;
/// WAL frame: one serialized [`GraphDelta`] that carries churn
/// (removals or label changes). A distinct tag so the record kind is
/// visible to tooling without decoding the payload; the payload codec
/// is self-describing either way. Introduced in store version 2 —
/// version-1 readers never see it because they refuse v2 files at the
/// header.
const TAG_DELTA_CHURN: u8 = 0x21;

/// The WAL record tag for a delta: churn-bearing deltas get their own
/// kind, purely additive ones keep the version-1 record.
fn delta_tag(d: &GraphDelta) -> u8 {
    if d.has_churn() {
        TAG_DELTA_CHURN
    } else {
        TAG_DELTA
    }
}

/// Coreset-mode tags persisted in the META frame.
const MODE_SINGLE: u8 = 0;
const MODE_KRIMP: u8 = 1;
const MODE_SLIM: u8 = 2;
/// Gain-policy tags persisted in the META frame.
const GAIN_TOTAL: u8 = 0;
const GAIN_DATA_ONLY: u8 = 1;

/// Why a store operation failed. Recoverable damage (torn WAL tail,
/// corrupt snapshot body) never surfaces here — it is reported through
/// [`RecoveryOutcome`] instead; errors are reserved for I/O and for
/// files the store must not touch.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(io::Error),
    /// The file at `path` is not a CSPM store (wrong magic). Refused
    /// outright: overwriting it at the next checkpoint could destroy
    /// a file that was never ours.
    Magic {
        /// The offending file.
        path: PathBuf,
    },
    /// The file was written by a newer store format than this build
    /// understands (version skew). Refused rather than misread.
    Version {
        /// The offending file.
        path: PathBuf,
        /// The version the file declares.
        found: u16,
    },
    /// The WAL handle is unusable after a failed reset; the snapshot
    /// on disk is newer than the log, so appending would write records
    /// recovery must ignore. A successful [`SessionStore::checkpoint`]
    /// repairs the store.
    WalUnavailable,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "store I/O error: {e}"),
            Self::Magic { path } => {
                write!(f, "{} is not a CSPM session store", path.display())
            }
            Self::Version { path, found } => write!(
                f,
                "{} uses store format v{found}; this build reads v{STORE_VERSION}",
                path.display()
            ),
            Self::WalUnavailable => write!(
                f,
                "WAL unavailable after a failed reset; checkpoint() to repair the store"
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// What [`SessionStore::open`] found on disk and how it coped. Every
/// variant is a *successful* open; see [`StoreError`] for the refusals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryOutcome {
    /// No snapshot existed — a brand-new store.
    Fresh,
    /// Snapshot and WAL both read back intact.
    Clean {
        /// Valid WAL records replayed on top of the snapshot.
        wal_records: usize,
    },
    /// The snapshot is intact but the WAL's tail (or its whole body)
    /// was torn or corrupt; the log was physically truncated to its
    /// last valid record and the tail's bytes were dropped.
    TailTruncated {
        /// Valid records that survived ahead of the damage.
        wal_records: usize,
        /// Bytes cut from the log.
        dropped_bytes: u64,
    },
    /// The snapshot itself failed validation; the store opens empty
    /// and the caller rebuilds cold. `detail` is the typed reason
    /// (which frame, torn vs checksum).
    SnapshotFallback {
        /// Human-readable diagnosis of the damage.
        detail: String,
    },
}

impl RecoveryOutcome {
    /// Stable machine-readable label: `fresh`, `clean`,
    /// `tail-truncated` or `snapshot-fallback`.
    pub fn label(&self) -> &'static str {
        match self {
            Self::Fresh => "fresh",
            Self::Clean { .. } => "clean",
            Self::TailTruncated { .. } => "tail-truncated",
            Self::SnapshotFallback { .. } => "snapshot-fallback",
        }
    }
}

impl fmt::Display for RecoveryOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Fresh => write!(f, "fresh store"),
            Self::Clean { wal_records } => {
                write!(f, "clean open ({wal_records} WAL records replayed)")
            }
            Self::TailTruncated {
                wal_records,
                dropped_bytes,
            } => write!(
                f,
                "WAL tail truncated: kept {wal_records} records, dropped {dropped_bytes} bytes"
            ),
            Self::SnapshotFallback { detail } => {
                write!(f, "snapshot unusable ({detail}); cold rebuild required")
            }
        }
    }
}

/// The session state a successful open recovered (when any existed).
#[derive(Debug, Clone)]
pub struct RecoveredState {
    /// The snapshot's graph.
    pub graph: AttributedGraph,
    /// The snapshot's database section, if one was written *and* read
    /// back intact. `None` means the checkpointing config had no
    /// serialisable database (multi-value coreset modes) or the
    /// section was damaged — rebuild from `graph`.
    pub db: Option<DbSection>,
    /// Why `db` is `None` despite a section being present on disk
    /// (media damage after the atomic rename). The graph frame
    /// validated, so it is salvaged; only the database is rebuilt.
    pub db_note: Option<String>,
    /// Coreset mode the snapshot was checkpointed under (`None` for a
    /// tag this build does not know).
    pub mode: Option<CoresetMode>,
    /// Gain policy the snapshot was checkpointed under.
    pub gain: Option<GainPolicy>,
    /// Valid WAL deltas, in append order, to replay on the snapshot.
    pub deltas: Vec<GraphDelta>,
}

/// Everything [`SessionStore::open`] has to say.
#[derive(Debug, Clone)]
pub struct Recovered {
    /// Recovered session state; `None` when the store is fresh or the
    /// snapshot fell back.
    pub state: Option<RecoveredState>,
    /// How the open went.
    pub outcome: RecoveryOutcome,
}

/// The serialized pristine database: `(coreset, leafset)` rows over one
/// flat positions arena, exactly the shape
/// [`InvertedDb::from_pristine_rows`] restores from.
#[derive(Debug, Clone, Default)]
pub struct DbSection {
    /// Per row: coreset id, leafset id, and the row's slice bounds in
    /// `positions`.
    rows: Vec<(u32, u32, usize, usize)>,
    /// All rows' vertex positions, concatenated in row order — the
    /// posting arena, compacted.
    positions: Vec<u32>,
}

impl DbSection {
    /// Captures a pristine database's rows. Rows are written sorted by
    /// `(coreset, leafset)` so equal databases serialize bit-identically
    /// regardless of hash-map iteration order.
    pub fn capture(db: &InvertedDb) -> Self {
        let mut rows: Vec<_> = db.iter_rows().collect();
        rows.sort_unstable_by_key(|&(e, l, _)| (e, l));
        let mut section = Self::default();
        for (e, l, positions) in rows {
            let start = section.positions.len();
            section.positions.extend_from_slice(&positions);
            section.rows.push((e, l, start, section.positions.len()));
        }
        section
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Iterates rows as `(coreset, leafset, positions)` — the exact
    /// item shape [`InvertedDb::from_pristine_rows`] takes.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, &[u32])> {
        self.rows
            .iter()
            .map(move |&(e, l, start, end)| (e, l, &self.positions[start..end]))
    }

    fn encode(&self, out: &mut Vec<u8>) {
        put_u32(out, self.rows.len() as u32);
        for &(e, l, start, end) in &self.rows {
            put_u32(out, e);
            put_u32(out, l);
            put_u32(out, (end - start) as u32);
            for &p in &self.positions[start..end] {
                put_u32(out, p);
            }
        }
    }

    fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        let row_count = r.bounded_count(12)?;
        let mut section = Self::default();
        for _ in 0..row_count {
            let e = r.u32()?;
            let l = r.u32()?;
            let len = r.bounded_count(4)?;
            let start = section.positions.len();
            section.positions.extend(r.u32s(len)?);
            section.rows.push((e, l, start, section.positions.len()));
        }
        r.finish()?;
        Ok(section)
    }
}

/// Byte sizes and log position of a store, for `cspm stats`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreStats {
    /// Snapshot file size on disk (0 when none exists yet).
    pub snapshot_bytes: u64,
    /// WAL file size on disk (0 when none exists yet).
    pub wal_bytes: u64,
    /// Checkpoint generation (0 = never checkpointed).
    pub generation: u64,
    /// WAL records appended since the last checkpoint.
    pub wal_records: usize,
}

/// The WAL append handle's lifecycle.
#[derive(Debug)]
enum WalHandle {
    /// No WAL file exists yet; the first append creates one.
    Missing,
    /// Open for appending, header generation == store generation.
    Ready(File),
    /// A reset failed after the snapshot advanced: the on-disk log (if
    /// any) belongs to an older generation, so appends are refused
    /// until a checkpoint rewrites it.
    Broken,
}

/// The file-level store: one snapshot, one WAL, atomic checkpoints.
///
/// `SessionStore` neither mines nor replays — it moves bytes and
/// recovers state; [`DurableSession`] owns the session semantics on
/// top. All mutating paths route through [`FaultFile`], so a test can
/// [arm](Self::arm_fault) one deterministic fault and observe exactly
/// what recovery makes of it.
#[derive(Debug)]
pub struct SessionStore {
    path: PathBuf,
    wal_path: PathBuf,
    generation: u64,
    wal: WalHandle,
    /// Valid WAL length in bytes, as this process believes it.
    wal_len: u64,
    wal_records: usize,
    armed: Option<(FaultTarget, Fault)>,
}

/// `base` with `.ext` appended to the full file name (`p.cs` →
/// `p.cs.wal`), keeping snapshot, WAL and temp files siblings.
fn sibling(base: &Path, ext: &str) -> PathBuf {
    let mut name = base.as_os_str().to_os_string();
    name.push(".");
    name.push(ext);
    PathBuf::from(name)
}

/// Durably writes `bytes` to `final_path` via temp file + fsync +
/// rename + directory fsync. A fault, if armed, applies to the temp
/// write — exactly the window a real crash would hit.
fn write_file_atomic(
    tmp: &Path,
    final_path: &Path,
    bytes: &[u8],
    fault: Option<Fault>,
) -> io::Result<()> {
    let write = || -> io::Result<()> {
        let mut f = FaultFile::new(File::create(tmp)?, fault);
        f.write_all(bytes)?;
        f.flush()?;
        timed_fsync(|| f.into_inner().sync_all())
    };
    if let Err(e) = write() {
        let _ = fs::remove_file(tmp);
        return Err(e);
    }
    fs::rename(tmp, final_path)?;
    // An fsync on the directory makes the rename itself durable.
    if let Some(dir) = final_path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(d) = File::open(dir) {
            let _ = timed_fsync(|| d.sync_all());
        }
    }
    Ok(())
}

impl SessionStore {
    /// Opens (or initialises) the store at `path`, recovering whatever
    /// state survived. Hard-errors only on I/O, foreign files and
    /// version skew; every flavour of *damage* comes back as a
    /// [`RecoveryOutcome`].
    pub fn open(path: impl AsRef<Path>) -> Result<(Self, Recovered), StoreError> {
        let res = Self::open_inner(path.as_ref());
        if let Ok((_, recovered)) = &res {
            store_metrics().recovery(recovered.outcome.label()).inc();
        }
        res
    }

    fn open_inner(path: &Path) -> Result<(Self, Recovered), StoreError> {
        let path = path.to_path_buf();
        let wal_path = sibling(&path, "wal");
        // A crashed checkpoint can leave temp files behind; they were
        // never renamed, so they are dead weight.
        let _ = fs::remove_file(sibling(&path, "tmp"));
        let _ = fs::remove_file(sibling(&wal_path, "tmp"));

        let mut store = Self {
            path,
            wal_path,
            generation: 0,
            wal: WalHandle::Missing,
            wal_len: 0,
            wal_records: 0,
            armed: None,
        };

        let bytes = match fs::read(&store.path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Ok((
                    store,
                    Recovered {
                        state: None,
                        outcome: RecoveryOutcome::Fresh,
                    },
                ));
            }
            Err(e) => return Err(e.into()),
        };

        let snap = match parse_snapshot(&store.path, &bytes) {
            Ok(snap) => snap,
            Err(SnapshotError::Refuse(e)) => return Err(e),
            Err(SnapshotError::Corrupt(detail)) => {
                // The file is ours (magic matched) but damaged; the
                // next checkpoint overwrites it. Any WAL is tied to a
                // generation we cannot read, so it is dead too.
                store.wal = WalHandle::Broken;
                return Ok((
                    store,
                    Recovered {
                        state: None,
                        outcome: RecoveryOutcome::SnapshotFallback { detail },
                    },
                ));
            }
        };
        store.generation = snap.generation;

        let wal = store.read_wal()?;
        let outcome = match wal.dropped_bytes {
            0 => RecoveryOutcome::Clean {
                wal_records: wal.deltas.len(),
            },
            dropped_bytes => RecoveryOutcome::TailTruncated {
                wal_records: wal.deltas.len(),
                dropped_bytes,
            },
        };
        Ok((
            store,
            Recovered {
                state: Some(RecoveredState {
                    graph: snap.graph,
                    db: snap.db,
                    db_note: snap.db_note,
                    mode: snap.mode,
                    gain: snap.gain,
                    deltas: wal.deltas,
                }),
                outcome,
            },
        ))
    }

    /// Snapshot file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// WAL file path (`<snapshot>.wal`).
    pub fn wal_path(&self) -> &Path {
        &self.wal_path
    }

    /// Checkpoint generation currently on disk (0 = none yet).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// WAL records appended since the last checkpoint.
    pub fn wal_records(&self) -> usize {
        self.wal_records
    }

    /// File sizes and log position, for `cspm stats --store`.
    pub fn stats(&self) -> StoreStats {
        let size = |p: &Path| fs::metadata(p).map(|m| m.len()).unwrap_or(0);
        StoreStats {
            snapshot_bytes: size(&self.path),
            wal_bytes: size(&self.wal_path),
            generation: self.generation,
            wal_records: self.wal_records,
        }
    }

    /// Arms one deterministic fault; the next write matching `target`
    /// consumes it. Test harness — see the [`fault`] module.
    pub fn arm_fault(&mut self, target: FaultTarget, fault: Fault) {
        self.armed = Some((target, fault));
    }

    fn take_fault(&mut self, target: FaultTarget) -> Option<Fault> {
        match self.armed {
            Some((t, f)) if t == target => {
                self.armed = None;
                Some(f)
            }
            _ => None,
        }
    }

    /// Writes a fresh snapshot of `(graph, db)` atomically, advances
    /// the generation, and resets the WAL. `db` is serialized only for
    /// [`CoresetMode::SingleValue`] (the restorable mode — see
    /// [`InvertedDb::from_pristine_rows`]); other modes persist the
    /// graph alone and rebuild cold on open.
    ///
    /// Crash windows: before the rename, the old snapshot + WAL are
    /// untouched (recover the *pre*-checkpoint state); after the
    /// rename but before the WAL reset completes, the old log's
    /// generation no longer matches and is ignored (recover the
    /// *post*-checkpoint state). Both are consistent.
    pub fn checkpoint(
        &mut self,
        graph: &AttributedGraph,
        db: Option<&InvertedDb>,
        mode: CoresetMode,
        gain: GainPolicy,
    ) -> Result<(), StoreError> {
        let started = std::time::Instant::now();
        let next_gen = self.generation + 1;
        let bytes = encode_snapshot(graph, db, mode, gain, next_gen);
        let fault = self.take_fault(FaultTarget::Snapshot);
        write_file_atomic(&sibling(&self.path, "tmp"), &self.path, &bytes, fault)?;
        self.generation = next_gen;
        // From here the snapshot on disk is ahead of the old log; a
        // failed reset must leave the handle Broken, not Ready.
        self.reset_wal(&[])?;
        let m = store_metrics();
        m.checkpoints.inc();
        m.checkpoint_seconds
            .observe(started.elapsed().as_secs_f64());
        Ok(())
    }

    /// Rewrites the WAL in place (same generation) to exactly `deltas`
    /// — the repair path when replay rejects a record mid-log. Returns
    /// the net bytes dropped.
    pub fn rewrite_wal(&mut self, deltas: &[GraphDelta]) -> Result<u64, StoreError> {
        let before = fs::metadata(&self.wal_path).map(|m| m.len()).unwrap_or(0);
        self.reset_wal(deltas)?;
        Ok(before.saturating_sub(self.wal_len))
    }

    /// Appends `deltas` to the WAL as one batch (one fsync). On
    /// failure the log is trimmed back to its pre-batch length, so a
    /// torn batch never poisons later appends.
    pub fn append_deltas(&mut self, deltas: &[GraphDelta]) -> Result<(), StoreError> {
        if deltas.is_empty() {
            return Ok(());
        }
        if matches!(self.wal, WalHandle::Missing) {
            self.reset_wal(&[])?;
        }
        let mut buf = Vec::new();
        for d in deltas {
            write_frame(&mut buf, delta_tag(d), &d.to_bytes());
        }
        let fault = self.take_fault(FaultTarget::WalAppend);
        let WalHandle::Ready(file) = &mut self.wal else {
            return Err(StoreError::WalUnavailable);
        };
        let before = self.wal_len;
        let mut f = FaultFile::new(&mut *file, fault);
        let res = f.write_all(&buf).and_then(|()| f.flush());
        match res {
            Ok(()) => {
                timed_fsync(|| file.sync_data())?;
                store_metrics().wal_bytes.add(buf.len() as u64);
                self.wal_len += buf.len() as u64;
                self.wal_records += deltas.len();
                Ok(())
            }
            Err(e) => {
                // Trim the torn batch so the next append starts clean.
                let _ = file.set_len(before);
                let _ = file.sync_data();
                Err(e.into())
            }
        }
    }

    /// Atomically replaces the WAL with a fresh log (current
    /// generation) holding exactly `deltas`.
    fn reset_wal(&mut self, deltas: &[GraphDelta]) -> Result<(), StoreError> {
        self.wal = WalHandle::Broken;
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&WAL_MAGIC);
        bytes.extend_from_slice(&STORE_VERSION.to_le_bytes());
        let mut gen_payload = Vec::new();
        put_u64(&mut gen_payload, self.generation);
        write_frame(&mut bytes, TAG_WAL_GEN, &gen_payload);
        for d in deltas {
            write_frame(&mut bytes, delta_tag(d), &d.to_bytes());
        }
        let fault = self.take_fault(FaultTarget::WalReset);
        write_file_atomic(
            &sibling(&self.wal_path, "tmp"),
            &self.wal_path,
            &bytes,
            fault,
        )?;
        let file = OpenOptions::new().append(true).open(&self.wal_path)?;
        self.wal = WalHandle::Ready(file);
        self.wal_len = bytes.len() as u64;
        self.wal_records = deltas.len();
        Ok(())
    }

    /// Reads the WAL at open time: validates header + generation,
    /// decodes records until damage, physically truncates the damage
    /// away, and leaves an append handle at the valid end.
    fn read_wal(&mut self) -> Result<WalRead, StoreError> {
        let bytes = match fs::read(&self.wal_path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                self.wal = WalHandle::Missing;
                return Ok(WalRead::default());
            }
            Err(e) => return Err(e.into()),
        };

        // Header or generation damage invalidates the whole log: we
        // cannot tie any record to the snapshot we just validated.
        // Rewrite it empty and report everything as dropped.
        let mut pos = 6;
        let header_ok = bytes.len() >= 6
            && bytes[..4] == WAL_MAGIC
            && u16::from_le_bytes([bytes[4], bytes[5]]) <= STORE_VERSION;
        let generation = header_ok
            .then(|| read_frame(&bytes, pos).ok().flatten())
            .flatten()
            .and_then(|(tag, payload, next)| {
                pos = next;
                (tag == TAG_WAL_GEN).then(|| Reader::new(payload).u64().ok())?
            });
        match generation {
            Some(g) if g == self.generation => {}
            Some(_) => {
                // A log from another generation is the crash window
                // between a snapshot rename and its WAL reset — the
                // snapshot already contains everything it recorded.
                self.reset_wal(&[])?;
                return Ok(WalRead::default());
            }
            None => {
                self.reset_wal(&[])?;
                return Ok(WalRead {
                    deltas: Vec::new(),
                    dropped_bytes: bytes.len() as u64,
                });
            }
        }

        let mut deltas = Vec::new();
        let mut valid_end = pos;
        let mut dropped = 0u64;
        loop {
            match read_frame(&bytes, pos) {
                Ok(None) => break,
                // Both record kinds decode through the same codec; the
                // tag only distinguishes them for tooling.
                Ok(Some((TAG_DELTA | TAG_DELTA_CHURN, payload, next))) => {
                    match GraphDelta::from_bytes(payload) {
                        Ok(d) => {
                            deltas.push(d);
                            valid_end = next;
                            pos = next;
                        }
                        Err(_) => {
                            // CRC passed but the payload is not a
                            // delta: written-corrupt. Same treatment
                            // as a torn tail — nothing after it can
                            // be trusted.
                            dropped = (bytes.len() - valid_end) as u64;
                            break;
                        }
                    }
                }
                Ok(Some((_, _, next))) => {
                    // Unknown-but-intact frame: skip (same-version
                    // forward compatibility), keep it in the file.
                    valid_end = next;
                    pos = next;
                }
                Err(FrameError::Truncated { offset }) | Err(FrameError::Checksum { offset }) => {
                    dropped = (bytes.len() - offset) as u64;
                    break;
                }
            }
        }

        if dropped > 0 {
            let file = OpenOptions::new().write(true).open(&self.wal_path)?;
            file.set_len(valid_end as u64)?;
            timed_fsync(|| file.sync_all())?;
        }
        self.wal = WalHandle::Ready(OpenOptions::new().append(true).open(&self.wal_path)?);
        self.wal_len = valid_end as u64;
        self.wal_records = deltas.len();
        Ok(WalRead {
            deltas,
            dropped_bytes: dropped,
        })
    }
}

#[derive(Debug, Default)]
struct WalRead {
    deltas: Vec<GraphDelta>,
    dropped_bytes: u64,
}

/// Mode → persisted `(tag, krimp_min_support)`.
fn mode_to_tags(mode: CoresetMode) -> (u8, u32) {
    match mode {
        CoresetMode::SingleValue => (MODE_SINGLE, 0),
        CoresetMode::Krimp { min_support } => (MODE_KRIMP, min_support),
        CoresetMode::Slim => (MODE_SLIM, 0),
    }
}

fn mode_from_tags(tag: u8, min_support: u32) -> Option<CoresetMode> {
    match tag {
        MODE_SINGLE => Some(CoresetMode::SingleValue),
        MODE_KRIMP => Some(CoresetMode::Krimp { min_support }),
        MODE_SLIM => Some(CoresetMode::Slim),
        _ => None,
    }
}

fn gain_to_tag(gain: GainPolicy) -> u8 {
    match gain {
        GainPolicy::Total => GAIN_TOTAL,
        GainPolicy::DataOnly => GAIN_DATA_ONLY,
    }
}

fn gain_from_tag(tag: u8) -> Option<GainPolicy> {
    match tag {
        GAIN_TOTAL => Some(GainPolicy::Total),
        GAIN_DATA_ONLY => Some(GainPolicy::DataOnly),
        _ => None,
    }
}

fn encode_snapshot(
    graph: &AttributedGraph,
    db: Option<&InvertedDb>,
    mode: CoresetMode,
    gain: GainPolicy,
    generation: u64,
) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&STORE_VERSION.to_le_bytes());

    let mut meta = Vec::new();
    put_u64(&mut meta, generation);
    let (mode_tag, min_support) = mode_to_tags(mode);
    meta.push(mode_tag);
    put_u32(&mut meta, min_support);
    meta.push(gain_to_tag(gain));
    write_frame(&mut out, TAG_META, &meta);

    let mut graph_bytes = Vec::new();
    encode_graph(graph, &mut graph_bytes);
    write_frame(&mut out, TAG_GRAPH, &graph_bytes);

    // Only canonical single-value databases round-trip through rows;
    // other modes rebuild from the graph on open.
    if let Some(db) = db.filter(|_| mode == CoresetMode::SingleValue) {
        let mut db_bytes = Vec::new();
        DbSection::capture(db).encode(&mut db_bytes);
        write_frame(&mut out, TAG_DB, &db_bytes);
    }
    out
}

struct ParsedSnapshot {
    generation: u64,
    mode: Option<CoresetMode>,
    gain: Option<GainPolicy>,
    graph: AttributedGraph,
    db: Option<DbSection>,
    db_note: Option<String>,
}

enum SnapshotError {
    /// Hard refusal — foreign file or version skew.
    Refuse(StoreError),
    /// Our file, damaged: fall back to a cold rebuild.
    Corrupt(String),
}

fn parse_snapshot(path: &Path, bytes: &[u8]) -> Result<ParsedSnapshot, SnapshotError> {
    if bytes.len() < 6 || bytes[..4] != SNAPSHOT_MAGIC {
        // Too short to even carry the magic: an empty or foreign file.
        // An empty file could be our own torn creation, but snapshots
        // are only ever renamed into place, so short means foreign.
        return Err(SnapshotError::Refuse(StoreError::Magic {
            path: path.to_path_buf(),
        }));
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version > STORE_VERSION {
        return Err(SnapshotError::Refuse(StoreError::Version {
            path: path.to_path_buf(),
            found: version,
        }));
    }

    let corrupt = |what: &str, detail: String| SnapshotError::Corrupt(format!("{what}: {detail}"));

    let mut pos = 6;
    // META must come first and parse.
    let meta = match read_frame(bytes, pos) {
        Ok(Some((TAG_META, payload, next))) => {
            pos = next;
            payload
        }
        Ok(_) => return Err(SnapshotError::Corrupt("missing META frame".into())),
        Err(e) => return Err(corrupt("META frame", e.to_string())),
    };
    let mut r = Reader::new(meta);
    let parsed_meta = (|| -> Result<(u64, u8, u32, u8), DecodeError> {
        Ok((r.u64()?, r.u8()?, r.u32()?, r.u8()?))
    })();
    let (generation, mode_tag, min_support, gain_tag) = match parsed_meta {
        Ok(m) => m,
        Err(e) => return Err(corrupt("META frame", e.to_string())),
    };

    // GRAPH must come next and decode.
    let graph = match read_frame(bytes, pos) {
        Ok(Some((TAG_GRAPH, payload, next))) => {
            pos = next;
            match decode_graph(payload) {
                Ok(g) => g,
                Err(e) => return Err(corrupt("GRAPH frame", e.to_string())),
            }
        }
        Ok(_) => return Err(SnapshotError::Corrupt("missing GRAPH frame".into())),
        Err(e) => return Err(corrupt("GRAPH frame", e.to_string())),
    };

    // Everything past the graph is optional: the session is already
    // recoverable, so damage here only costs the warm database.
    let mut db = None;
    let mut db_note = None;
    loop {
        match read_frame(bytes, pos) {
            Ok(None) => break,
            Ok(Some((TAG_DB, payload, next))) => {
                pos = next;
                match DbSection::decode(payload) {
                    Ok(section) => db = Some(section),
                    Err(e) => db_note = Some(format!("DB frame: {e}")),
                }
            }
            Ok(Some((_, _, next))) => pos = next,
            Err(e) => {
                db = None;
                db_note = Some(format!("trailing frames: {e}"));
                break;
            }
        }
    }

    Ok(ParsedSnapshot {
        generation,
        mode: mode_from_tags(mode_tag, min_support),
        gain: gain_from_tag(gain_tag),
        graph,
        db,
        db_note,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cspm_graph::fixtures::paper_example;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_store(name: &str) -> PathBuf {
        static UNIQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join("cspm-store-tests");
        fs::create_dir_all(&dir).unwrap();
        let n = UNIQ.fetch_add(1, Ordering::Relaxed);
        dir.join(format!("{name}-{}-{n}.css", std::process::id()))
    }

    fn one_delta(g: &AttributedGraph) -> GraphDelta {
        let mut d = GraphDelta::new();
        let v = d.add_vertex(["a", "zz"]);
        d.add_edge(v, cspm_graph::dynamic::DeltaVertex::Existing(0));
        let _ = g; // delta targets vertex 0, present in every fixture
        d
    }

    #[test]
    fn store_traffic_moves_the_metrics() {
        let m = store_metrics();
        let fsyncs = m.fsyncs.get();
        let wal_bytes = m.wal_bytes.get();
        let checkpoints = m.checkpoints.get();
        let fresh = m.recovery("fresh").get();
        let clean = m.recovery("clean").get();

        let path = temp_store("metrics");
        let (mut store, _) = SessionStore::open(&path).unwrap();
        let (g, _) = paper_example();
        store
            .checkpoint(&g, None, CoresetMode::SingleValue, GainPolicy::Total)
            .unwrap();
        let d = one_delta(&g);
        store.append_deltas(std::slice::from_ref(&d)).unwrap();
        drop(store);
        let _ = SessionStore::open(&path).unwrap();

        assert!(m.fsyncs.get() > fsyncs);
        assert!(m.fsync_seconds.count() > 0);
        assert!(m.wal_bytes.get() > wal_bytes);
        // Other tests in this binary checkpoint and reopen stores too,
        // so lower-bound rather than pin the shared counters.
        assert!(m.checkpoints.get() > checkpoints);
        assert!(m.checkpoint_seconds.count() > 0);
        assert!(m.recovery("fresh").get() > fresh);
        assert!(m.recovery("clean").get() > clean);
    }

    #[test]
    fn fresh_open_then_checkpoint_then_clean_reopen() {
        let path = temp_store("fresh");
        let (mut store, rec) = SessionStore::open(&path).unwrap();
        assert_eq!(rec.outcome, RecoveryOutcome::Fresh);
        assert!(rec.state.is_none());
        assert_eq!(store.generation(), 0);

        let (g, _) = paper_example();
        let db = InvertedDb::build(&g, CoresetMode::SingleValue, GainPolicy::Total);
        store
            .checkpoint(&g, Some(&db), CoresetMode::SingleValue, GainPolicy::Total)
            .unwrap();
        assert_eq!(store.generation(), 1);

        let (store2, rec2) = SessionStore::open(&path).unwrap();
        assert_eq!(rec2.outcome, RecoveryOutcome::Clean { wal_records: 0 });
        let state = rec2.state.unwrap();
        assert_eq!(state.graph, g);
        assert_eq!(state.mode, Some(CoresetMode::SingleValue));
        assert_eq!(state.gain, Some(GainPolicy::Total));
        let section = state.db.expect("single-value db serialized");
        let restored =
            InvertedDb::from_pristine_rows(&state.graph, GainPolicy::Total, section.iter())
                .unwrap();
        assert_eq!(restored.total_dl().to_bits(), db.total_dl().to_bits());
        assert_eq!(store2.generation(), 1);
    }

    #[test]
    fn wal_records_replay_in_order() {
        let path = temp_store("wal");
        let (mut store, _) = SessionStore::open(&path).unwrap();
        let (g, _) = paper_example();
        store
            .checkpoint(&g, None, CoresetMode::SingleValue, GainPolicy::Total)
            .unwrap();
        let d = one_delta(&g);
        store.append_deltas(&[d.clone(), d.clone()]).unwrap();
        store.append_deltas(std::slice::from_ref(&d)).unwrap();
        assert_eq!(store.wal_records(), 3);

        let (store2, rec) = SessionStore::open(&path).unwrap();
        assert_eq!(rec.outcome, RecoveryOutcome::Clean { wal_records: 3 });
        let state = rec.state.unwrap();
        assert_eq!(state.deltas.len(), 3);
        assert_eq!(state.deltas[0].to_bytes(), d.to_bytes());
        assert_eq!(store2.wal_records(), 3);
    }

    #[test]
    fn checkpoint_resets_wal() {
        let path = temp_store("reset");
        let (mut store, _) = SessionStore::open(&path).unwrap();
        let (g, _) = paper_example();
        store
            .checkpoint(&g, None, CoresetMode::SingleValue, GainPolicy::Total)
            .unwrap();
        store.append_deltas(&[one_delta(&g)]).unwrap();
        store
            .checkpoint(&g, None, CoresetMode::SingleValue, GainPolicy::Total)
            .unwrap();
        assert_eq!(store.wal_records(), 0);
        let (_, rec) = SessionStore::open(&path).unwrap();
        assert_eq!(rec.outcome, RecoveryOutcome::Clean { wal_records: 0 });
    }

    #[test]
    fn torn_wal_tail_is_truncated() {
        let path = temp_store("torn");
        let (mut store, _) = SessionStore::open(&path).unwrap();
        let (g, _) = paper_example();
        store
            .checkpoint(&g, None, CoresetMode::SingleValue, GainPolicy::Total)
            .unwrap();
        store.append_deltas(&[one_delta(&g)]).unwrap();
        let intact = fs::metadata(store.wal_path()).unwrap().len();
        store.append_deltas(&[one_delta(&g)]).unwrap();
        // Tear the second record: chop 3 bytes off the file.
        let full = fs::metadata(store.wal_path()).unwrap().len();
        let f = OpenOptions::new()
            .write(true)
            .open(store.wal_path())
            .unwrap();
        f.set_len(full - 3).unwrap();
        drop((store, f));

        let (store2, rec) = SessionStore::open(&path).unwrap();
        assert_eq!(
            rec.outcome,
            RecoveryOutcome::TailTruncated {
                wal_records: 1,
                dropped_bytes: full - 3 - intact,
            }
        );
        assert_eq!(rec.state.unwrap().deltas.len(), 1);
        // The damage is physically gone: a plain reopen is clean.
        drop(store2);
        let (_, rec2) = SessionStore::open(&path).unwrap();
        assert_eq!(rec2.outcome, RecoveryOutcome::Clean { wal_records: 1 });
    }

    #[test]
    fn stale_generation_wal_is_ignored() {
        let path = temp_store("stalegen");
        let (mut store, _) = SessionStore::open(&path).unwrap();
        let (g, _) = paper_example();
        store
            .checkpoint(&g, None, CoresetMode::SingleValue, GainPolicy::Total)
            .unwrap();
        store.append_deltas(&[one_delta(&g)]).unwrap();
        let old_wal = fs::read(store.wal_path()).unwrap();
        store
            .checkpoint(&g, None, CoresetMode::SingleValue, GainPolicy::Total)
            .unwrap();
        // Simulate the crash window: new snapshot on disk, old WAL back
        // in place (the reset "never happened").
        fs::write(store.wal_path(), &old_wal).unwrap();
        drop(store);

        let (_, rec) = SessionStore::open(&path).unwrap();
        assert_eq!(rec.outcome, RecoveryOutcome::Clean { wal_records: 0 });
        assert!(rec.state.unwrap().deltas.is_empty());
    }

    #[test]
    fn corrupt_snapshot_falls_back_and_next_checkpoint_heals() {
        let path = temp_store("corrupt");
        let (mut store, _) = SessionStore::open(&path).unwrap();
        let (g, _) = paper_example();
        store
            .checkpoint(&g, None, CoresetMode::SingleValue, GainPolicy::Total)
            .unwrap();
        drop(store);
        // Flip a byte in the GRAPH frame region.
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();

        let (mut store, rec) = SessionStore::open(&path).unwrap();
        assert!(matches!(
            rec.outcome,
            RecoveryOutcome::SnapshotFallback { .. }
        ));
        assert!(rec.state.is_none());
        // The store is usable again after one checkpoint.
        store
            .checkpoint(&g, None, CoresetMode::SingleValue, GainPolicy::Total)
            .unwrap();
        drop(store);
        let (_, rec2) = SessionStore::open(&path).unwrap();
        assert_eq!(rec2.outcome, RecoveryOutcome::Clean { wal_records: 0 });
        assert_eq!(rec2.state.unwrap().graph, g);
    }

    #[test]
    fn foreign_file_and_future_version_are_refused() {
        let path = temp_store("foreign");
        fs::write(&path, b"definitely not a store").unwrap();
        assert!(matches!(
            SessionStore::open(&path),
            Err(StoreError::Magic { .. })
        ));

        let path2 = temp_store("future");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&SNAPSHOT_MAGIC);
        bytes.extend_from_slice(&(STORE_VERSION + 1).to_le_bytes());
        fs::write(&path2, &bytes).unwrap();
        assert!(matches!(
            SessionStore::open(&path2),
            Err(StoreError::Version { found, .. }) if found == STORE_VERSION + 1
        ));
    }

    #[test]
    fn damaged_db_section_salvages_graph() {
        let path = temp_store("dbflip");
        let (mut store, _) = SessionStore::open(&path).unwrap();
        let (g, _) = paper_example();
        let db = InvertedDb::build(&g, CoresetMode::SingleValue, GainPolicy::Total);
        store
            .checkpoint(&g, Some(&db), CoresetMode::SingleValue, GainPolicy::Total)
            .unwrap();
        drop(store);
        // Flip a byte near the end of the file — inside the DB frame.
        let mut bytes = fs::read(&path).unwrap();
        let at = bytes.len() - 8;
        bytes[at] ^= 0x10;
        fs::write(&path, &bytes).unwrap();

        let (_, rec) = SessionStore::open(&path).unwrap();
        let state = rec.state.expect("graph salvaged");
        assert_eq!(state.graph, g);
        assert!(state.db.is_none());
        assert!(state.db_note.is_some());
    }

    #[test]
    fn multi_value_modes_skip_the_db_section() {
        let path = temp_store("slim");
        let (mut store, _) = SessionStore::open(&path).unwrap();
        let (g, _) = paper_example();
        let db = InvertedDb::build(&g, CoresetMode::Slim, GainPolicy::Total);
        store
            .checkpoint(&g, Some(&db), CoresetMode::Slim, GainPolicy::Total)
            .unwrap();
        drop(store);
        let (_, rec) = SessionStore::open(&path).unwrap();
        let state = rec.state.unwrap();
        assert_eq!(state.mode, Some(CoresetMode::Slim));
        assert!(state.db.is_none());
        assert!(state.db_note.is_none());
    }
}
