//! Deterministic fault injection for the durability test suite.
//!
//! A [`FaultFile`] wraps any [`Write`] sink and misbehaves at a scripted
//! byte offset — dying, silently dropping the tail, or flipping one bit.
//! [`SessionStore`](crate::SessionStore) routes every on-disk mutation
//! through one, so a test can arm a fault at a precise point in a
//! snapshot, a WAL append, or a WAL reset and then assert what recovery
//! makes of the damage. Offsets are counted from the start of *that
//! write operation* (a whole snapshot file, one append batch, one fresh
//! WAL), which makes an injection-point sweep a plain loop over
//! `0..len` — no timing, no threads, no real crashes.

use std::io::{self, Write};

/// One scripted misbehaviour, at a byte offset within the faulted write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The process "dies" at offset `at`: bytes before it reach the
    /// sink, everything from it on fails with an I/O error. Models a
    /// crash mid-write — the caller sees the error, the file keeps the
    /// torn prefix.
    Kill {
        /// Offset of the first byte that is never written.
        at: u64,
    },
    /// Bytes from offset `at` on are silently discarded while the write
    /// *reports success*. Models a torn write that the kernel
    /// acknowledged but never made durable (power loss after a lying
    /// fsync): the process carries on believing the data landed.
    Truncate {
        /// Offset of the first byte that is silently dropped.
        at: u64,
    },
    /// The byte at offset `at` has one bit flipped (bit `at % 8`, so a
    /// sweep exercises different bit positions). Models media
    /// corruption; the write succeeds.
    Flip {
        /// Offset of the corrupted byte.
        at: u64,
    },
}

/// Which store write the armed fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// The snapshot temp-file write inside a checkpoint (before the
    /// atomic rename).
    Snapshot,
    /// The next WAL record append batch.
    WalAppend,
    /// The WAL rewrite at the end of a checkpoint (or after a replay
    /// repair) — the window where the new snapshot already exists but
    /// the old-generation WAL is being replaced.
    WalReset,
}

/// A [`Write`] adapter that injects one [`Fault`] at its scripted
/// offset. With no fault armed it is a transparent pass-through.
#[derive(Debug)]
pub struct FaultFile<W> {
    inner: W,
    fault: Option<Fault>,
    /// Bytes successfully *accepted* so far (including bytes a
    /// `Truncate` fault pretended to write).
    written: u64,
}

impl<W: Write> FaultFile<W> {
    /// Wraps `inner`; `fault` of `None` passes everything through.
    pub fn new(inner: W, fault: Option<Fault>) -> Self {
        Self {
            inner,
            fault,
            written: 0,
        }
    }

    /// Unwraps back to the sink (for `sync_all` on files).
    pub fn into_inner(self) -> W {
        self.inner
    }
}

/// The error every [`Fault::Kill`] surfaces as.
pub(crate) fn injected_crash() -> io::Error {
    io::Error::other("injected crash (fault harness)")
}

impl<W: Write> Write for FaultFile<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        match self.fault {
            None => {
                let n = self.inner.write(buf)?;
                self.written += n as u64;
                Ok(n)
            }
            Some(Fault::Kill { at }) => {
                let room = at.saturating_sub(self.written);
                if room == 0 {
                    return Err(injected_crash());
                }
                let allowed = buf.len().min(room as usize);
                let n = self.inner.write(&buf[..allowed])?;
                self.written += n as u64;
                // Partial success; the killing error surfaces on the
                // retry `write_all` is guaranteed to make.
                Ok(n)
            }
            Some(Fault::Truncate { at }) => {
                let room = at.saturating_sub(self.written);
                let allowed = buf.len().min(room as usize);
                if allowed > 0 {
                    self.inner.write_all(&buf[..allowed])?;
                }
                // Lie: the dropped tail "succeeded".
                self.written += buf.len() as u64;
                Ok(buf.len())
            }
            Some(Fault::Flip { at }) => {
                let start = self.written;
                let end = start + buf.len() as u64;
                if at < start || at >= end {
                    let n = self.inner.write(buf)?;
                    self.written += n as u64;
                    return Ok(n);
                }
                let mut copy = buf.to_vec();
                copy[(at - start) as usize] ^= 1 << (at % 8);
                let n = self.inner.write(&copy)?;
                self.written += n as u64;
                Ok(n)
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(fault: Fault, chunks: &[&[u8]]) -> (Vec<u8>, Result<(), io::Error>) {
        let mut sink = Vec::new();
        let mut f = FaultFile::new(&mut sink, Some(fault));
        let mut outcome = Ok(());
        for chunk in chunks {
            if let Err(e) = f.write_all(chunk) {
                outcome = Err(e);
                break;
            }
        }
        (sink, outcome)
    }

    #[test]
    fn kill_keeps_prefix_and_errors() {
        let (bytes, outcome) = run(Fault::Kill { at: 3 }, &[b"ab", b"cdef"]);
        assert_eq!(bytes, b"abc");
        assert!(outcome.is_err());
    }

    #[test]
    fn kill_at_zero_writes_nothing() {
        let (bytes, outcome) = run(Fault::Kill { at: 0 }, &[b"abcdef"]);
        assert!(bytes.is_empty());
        assert!(outcome.is_err());
    }

    #[test]
    fn truncate_drops_tail_silently() {
        let (bytes, outcome) = run(Fault::Truncate { at: 4 }, &[b"abc", b"def", b"gh"]);
        assert_eq!(bytes, b"abcd");
        assert!(outcome.is_ok());
    }

    #[test]
    fn flip_corrupts_exactly_one_bit() {
        let (bytes, outcome) = run(Fault::Flip { at: 2 }, &[b"ab", b"cd"]);
        assert!(outcome.is_ok());
        assert_eq!(bytes.len(), 4);
        assert_eq!(&bytes[..2], b"ab");
        assert_eq!(bytes[2], b'c' ^ (1 << 2));
        assert_eq!(bytes[3], b'd');
    }

    #[test]
    fn no_fault_is_transparent() {
        let mut sink = Vec::new();
        let mut f = FaultFile::new(&mut sink, None);
        f.write_all(b"hello").unwrap();
        assert_eq!(sink, b"hello");
    }
}
