//! The classification experiment: a-star features vs histogram baseline.

use cspm_nn::{Matrix, NetConfig, TwoLayerNet};
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, SeedableRng};

use crate::dataset::LabeledGraphs;
use crate::featurize::{histogram_features, shared_vocabulary, AStarFeaturizer};

/// Outcome of one train/test evaluation.
#[derive(Debug, Clone)]
pub struct ClassifierReport {
    /// Test accuracy of the a-star feature classifier.
    pub astar_accuracy: f64,
    /// Test accuracy of the attribute-histogram baseline.
    pub histogram_accuracy: f64,
    /// Number of a-star feature dimensions used.
    pub astar_dims: usize,
    /// Test-set size.
    pub n_test: usize,
}

fn one_hot(labels: &[usize], n_classes: usize) -> Matrix {
    let mut t = Matrix::zeros(labels.len(), n_classes);
    for (i, &c) in labels.iter().enumerate() {
        t.set(i, c, 1.0);
    }
    t
}

fn accuracy(scores: &Matrix, labels: &[usize]) -> f64 {
    let mut hits = 0usize;
    for (i, &truth) in labels.iter().enumerate() {
        let row = scores.row(i);
        let pred = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(c, _)| c)
            .unwrap();
        hits += usize::from(pred == truth);
    }
    hits as f64 / labels.len().max(1) as f64
}

fn fit_and_score(
    x_train: &Matrix,
    y_train: &[usize],
    x_test: &Matrix,
    n_classes: usize,
    cfg: &NetConfig,
) -> Matrix {
    let mut net = TwoLayerNet::new(x_train.cols(), cfg.hidden, n_classes, cfg.seed);
    let targets = one_hot(y_train, n_classes);
    let mask = vec![true; x_train.rows()];
    net.fit(x_train, &targets, &mask, None, None, cfg);
    net.forward(x_test, None, None)
}

/// Runs the full experiment: split the collection, fit the featurizer on
/// training graphs only, train both classifiers, report test accuracies.
pub fn train_classifier(
    data: &LabeledGraphs,
    test_fraction: f64,
    top_k: usize,
    cfg: &NetConfig,
    seed: u64,
) -> ClassifierReport {
    let n = data.graphs.len();
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    let n_test = ((n as f64 * test_fraction) as usize).max(1);
    let (test_idx, train_idx) = order.split_at(n_test);

    let pick = |idx: &[usize]| -> (Vec<cspm_graph::AttributedGraph>, Vec<usize>) {
        (
            idx.iter().map(|&i| data.graphs[i].clone()).collect(),
            idx.iter().map(|&i| data.labels[i]).collect(),
        )
    };
    let (train_graphs, train_labels) = pick(train_idx);
    let (test_graphs, test_labels) = pick(test_idx);

    // A-star features (fitted on training graphs only — no leakage).
    let featurizer = AStarFeaturizer::fit(&train_graphs, top_k);
    let astar_scores = fit_and_score(
        &featurizer.transform(&train_graphs),
        &train_labels,
        &featurizer.transform(&test_graphs),
        data.n_classes,
        cfg,
    );

    // Histogram baseline (vocabulary from training graphs only).
    let vocab = shared_vocabulary(&train_graphs);
    let hist_scores = fit_and_score(
        &histogram_features(&train_graphs, &vocab),
        &train_labels,
        &histogram_features(&test_graphs, &vocab),
        data.n_classes,
        cfg,
    );

    ClassifierReport {
        astar_accuracy: accuracy(&astar_scores, &test_labels),
        histogram_accuracy: accuracy(&hist_scores, &test_labels),
        astar_dims: featurizer.dim(),
        n_test: test_labels.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{labeled_graph_collection, CollectionConfig};

    #[test]
    fn astar_features_beat_histograms_on_structural_classes() {
        let data = labeled_graph_collection(2, CollectionConfig::default());
        let cfg = NetConfig {
            hidden: 16,
            epochs: 200,
            ..Default::default()
        };
        let report = train_classifier(&data, 0.3, 24, &cfg, 5);
        assert!(report.n_test >= 10);
        // Classes differ structurally, not in vocabulary: the a-star
        // classifier must do clearly better than the histogram baseline
        // and far better than chance (0.5).
        assert!(
            report.astar_accuracy >= 0.8,
            "a-star accuracy {}",
            report.astar_accuracy
        );
        assert!(
            report.astar_accuracy >= report.histogram_accuracy,
            "a-star {} vs histogram {}",
            report.astar_accuracy,
            report.histogram_accuracy
        );
    }

    #[test]
    fn one_hot_and_accuracy_helpers() {
        let t = one_hot(&[0, 2], 3);
        assert_eq!(t.row(0), &[1.0, 0.0, 0.0]);
        assert_eq!(t.row(1), &[0.0, 0.0, 1.0]);
        let scores = Matrix::from_vec(2, 3, vec![0.9, 0.1, 0.0, 0.2, 0.3, 0.5]);
        assert!((accuracy(&scores, &[0, 2]) - 1.0).abs() < 1e-12);
        assert!((accuracy(&scores, &[1, 2]) - 0.5).abs() < 1e-12);
    }
}
