//! Labeled graph collections for the classification experiment.

use cspm_graph::{AttributedGraph, GraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`labeled_graph_collection`].
#[derive(Debug, Clone, Copy)]
pub struct CollectionConfig {
    /// Graphs per class.
    pub graphs_per_class: usize,
    /// Hub motifs per graph.
    pub motifs_per_graph: usize,
    /// Probability that a motif follows the class signature (the rest
    /// are cross-class noise).
    pub signature_fidelity: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CollectionConfig {
    fn default() -> Self {
        Self {
            graphs_per_class: 20,
            motifs_per_graph: 8,
            signature_fidelity: 0.85,
            seed: 31,
        }
    }
}

/// A labeled collection of attributed graphs.
#[derive(Debug, Clone)]
pub struct LabeledGraphs {
    /// The graphs.
    pub graphs: Vec<AttributedGraph>,
    /// Class id per graph.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub n_classes: usize,
}

/// Per-class wirings. Every class emits motifs in *pairs* with hubs
/// `m0` and `m3` and leaves `m1, m2, m4, m5` — identical attribute-value
/// counts across classes, so histogram features are blind by
/// construction; only *which hub sees which leaves* differs.
const SIGNATURES: &[[(&str, [&str; 2]); 2]] = &[
    [("m0", ["m1", "m2"]), ("m3", ["m4", "m5"])], // class 0
    [("m0", ["m4", "m5"]), ("m3", ["m1", "m2"])], // class 1
    [("m0", ["m1", "m4"]), ("m3", ["m2", "m5"])], // class 2
];

/// Generates a two-or-three-class collection with structural (not
/// occurrence-level) class differences.
pub fn labeled_graph_collection(n_classes: usize, cfg: CollectionConfig) -> LabeledGraphs {
    assert!((2..=SIGNATURES.len()).contains(&n_classes));
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut graphs = Vec::new();
    let mut labels = Vec::new();
    for class in 0..n_classes {
        for _ in 0..cfg.graphs_per_class {
            graphs.push(one_graph(class, n_classes, &cfg, &mut rng));
            labels.push(class);
        }
    }
    LabeledGraphs {
        graphs,
        labels,
        n_classes,
    }
}

fn one_graph(
    class: usize,
    n_classes: usize,
    cfg: &CollectionConfig,
    rng: &mut StdRng,
) -> AttributedGraph {
    let mut b = GraphBuilder::new();
    let mut prev_hub: Option<u32> = None;
    for _ in 0..cfg.motifs_per_graph {
        // Motif-pair wiring: usually the class's own, sometimes another
        // class's (noise). Either way the attribute counts are the same.
        let wiring = if rng.gen::<f64>() < cfg.signature_fidelity {
            &SIGNATURES[class]
        } else {
            &SIGNATURES[rng.gen_range(0..n_classes)]
        };
        for (hub_value, leaf_values) in wiring {
            let hub = b.add_vertex([hub_value]);
            for leaf_value in leaf_values {
                let leaf = b.add_vertex([leaf_value]);
                b.add_edge(hub, leaf).unwrap();
            }
            if let Some(p) = prev_hub {
                b.add_edge(p, hub).unwrap();
            }
            prev_hub = Some(hub);
        }
    }
    b.build().expect("hub chain keeps the graph connected")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collection_shape() {
        let c = labeled_graph_collection(2, CollectionConfig::default());
        assert_eq!(c.graphs.len(), 40);
        assert_eq!(c.labels.len(), 40);
        assert_eq!(c.n_classes, 2);
        for g in &c.graphs {
            assert!(g.is_connected());
        }
    }

    #[test]
    fn classes_share_the_attribute_vocabulary() {
        // The design goal: histogram features are (nearly) uninformative.
        let c = labeled_graph_collection(2, CollectionConfig::default());
        let vocab = |g: &AttributedGraph| {
            let mut names: Vec<&str> = g.attrs().iter().map(|(_, n)| n).collect();
            names.sort_unstable();
            names.join(",")
        };
        // m0, m1 appear in both classes (signatures overlap by design).
        let v0 = vocab(&c.graphs[0]);
        assert!(v0.contains("m0") && v0.contains("m1"));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = labeled_graph_collection(2, CollectionConfig::default());
        let b = labeled_graph_collection(2, CollectionConfig::default());
        assert_eq!(a.graphs[3], b.graphs[3]);
    }

    #[test]
    #[should_panic]
    fn too_many_classes_rejected() {
        let _ = labeled_graph_collection(9, CollectionConfig::default());
    }
}
