//! Graph classification with a-star features.
//!
//! The paper's first future-work item: "utilize a-stars found by CSPM
//! for other graph-related learning problems such as graph
//! classification". This crate implements that pipeline end to end:
//!
//! 1. mine a-stars on the disjoint union of the *training* graphs
//!    (parameter-free, as always);
//! 2. represent every graph by the occurrence counts of the top-ranked
//!    a-stars ([`AStarFeaturizer`]), normalised by vertex count;
//! 3. train a one-vs-all logistic classifier (on the [`cspm_nn`]
//!    substrate) and evaluate accuracy against an attribute-histogram
//!    baseline that ignores structure.
//!
//! A-star features beat the histogram baseline exactly when classes
//! differ in *how attributes co-locate across edges* rather than in
//! which attributes occur — which is what the a-star pattern language
//! captures.

mod dataset;
mod featurize;
mod model;

pub use dataset::{labeled_graph_collection, CollectionConfig, LabeledGraphs};
pub use featurize::{histogram_features, AStarFeaturizer};
pub use model::{train_classifier, ClassifierReport};
