//! Feature extraction: a-star occurrence counts vs attribute histograms.

use cspm_core::{cspm_partial, CspmConfig, MinedModel};
use cspm_graph::dynamic::SnapshotSequence;
use cspm_graph::{AStar, AttrTable, AttributedGraph};
use cspm_nn::Matrix;

/// Featurizes graphs by the occurrence counts of mined a-stars.
///
/// The featurizer is *fitted* on training graphs only: CSPM runs on
/// their disjoint union, and the `top_k` most informative a-stars
/// (shortest codes) become feature dimensions. Applying it to a graph
/// counts each pattern's matching vertices, normalised by vertex count.
#[derive(Debug, Clone)]
pub struct AStarFeaturizer {
    patterns: Vec<AStar>,
    attrs: AttrTable,
}

impl AStarFeaturizer {
    /// Mines the union of `train` graphs and keeps the `top_k` patterns.
    pub fn fit(train: &[AttributedGraph], top_k: usize) -> Self {
        let seq: SnapshotSequence = train.iter().cloned().collect();
        let union = seq.union_graph();
        let result = cspm_partial(&union, CspmConfig::default());
        Self::from_model(&result.model, union.attrs().clone(), top_k)
    }

    /// Builds the featurizer from an existing model.
    pub fn from_model(model: &MinedModel, attrs: AttrTable, top_k: usize) -> Self {
        let patterns = model
            .astars()
            .iter()
            .take(top_k)
            .map(|m| m.astar.clone())
            .collect();
        Self { patterns, attrs }
    }

    /// Number of feature dimensions.
    pub fn dim(&self) -> usize {
        self.patterns.len()
    }

    /// The patterns serving as features.
    pub fn patterns(&self) -> &[AStar] {
        &self.patterns
    }

    /// Featurizes one graph. The graph's attribute values are reconciled
    /// with the training attribute table **by name**; unseen values
    /// simply never match.
    pub fn transform_one(&self, g: &AttributedGraph) -> Vec<f64> {
        // Remap pattern attr ids into g's id space (by name).
        let remap: Vec<Option<u32>> = (0..self.attrs.len() as u32)
            .map(|a| self.attrs.name(a).and_then(|n| g.attrs().get(n)))
            .collect();
        let n = g.vertex_count().max(1) as f64;
        self.patterns
            .iter()
            .map(|p| {
                let core: Option<Vec<u32>> =
                    p.coreset().iter().map(|&a| remap[a as usize]).collect();
                let leaf: Option<Vec<u32>> =
                    p.leafset().iter().map(|&a| remap[a as usize]).collect();
                match (core, leaf) {
                    (Some(c), Some(l)) => AStar::new(c, l).support(g) as f64 / n,
                    _ => 0.0, // pattern uses a value absent from this graph
                }
            })
            .collect()
    }

    /// Featurizes a collection into a matrix (one row per graph).
    pub fn transform(&self, graphs: &[AttributedGraph]) -> Matrix {
        let mut out = Matrix::zeros(graphs.len(), self.dim());
        for (i, g) in graphs.iter().enumerate() {
            out.row_mut(i).copy_from_slice(&self.transform_one(g));
        }
        out
    }
}

/// Structure-blind baseline: per-graph attribute-value frequency
/// histogram over a shared vocabulary (by name), normalised by vertex
/// count.
pub fn histogram_features(graphs: &[AttributedGraph], vocab: &AttrTable) -> Matrix {
    let mut out = Matrix::zeros(graphs.len(), vocab.len());
    for (i, g) in graphs.iter().enumerate() {
        let n = g.vertex_count().max(1) as f64;
        let row = out.row_mut(i);
        for v in g.vertices() {
            for &a in g.labels(v) {
                if let Some(id) = g.attrs().name(a).and_then(|nm| vocab.get(nm)) {
                    row[id as usize] += 1.0 / n;
                }
            }
        }
    }
    out
}

/// Builds a shared vocabulary over a collection (by name).
pub fn shared_vocabulary(graphs: &[AttributedGraph]) -> AttrTable {
    let mut vocab = AttrTable::new();
    for g in graphs {
        for (_, name) in g.attrs().iter() {
            vocab.intern(name);
        }
    }
    vocab
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{labeled_graph_collection, CollectionConfig};

    #[test]
    fn featurizer_produces_meaningful_counts() {
        let c = labeled_graph_collection(2, CollectionConfig::default());
        let f = AStarFeaturizer::fit(&c.graphs[..10], 16);
        assert!(f.dim() > 0 && f.dim() <= 16);
        let x = f.transform(&c.graphs);
        assert_eq!(x.rows(), c.graphs.len());
        // Features are normalised occurrence rates.
        assert!(x.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        // At least one feature separates the classes in the mean.
        let mean = |class: usize, dim: usize| {
            let rows: Vec<usize> = (0..c.graphs.len())
                .filter(|&i| c.labels[i] == class)
                .collect();
            rows.iter().map(|&r| x.get(r, dim)).sum::<f64>() / rows.len() as f64
        };
        let separated = (0..f.dim()).any(|d| (mean(0, d) - mean(1, d)).abs() > 0.02);
        assert!(separated, "no a-star feature separates the classes");
    }

    #[test]
    fn histogram_features_are_structure_blind() {
        let c = labeled_graph_collection(2, CollectionConfig::default());
        let vocab = shared_vocabulary(&c.graphs);
        let h = histogram_features(&c.graphs, &vocab);
        assert_eq!(h.cols(), vocab.len());
        assert!(h.data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn unseen_attribute_values_yield_zero() {
        let c = labeled_graph_collection(2, CollectionConfig::default());
        let f = AStarFeaturizer::fit(&c.graphs[..4], 8);
        // A graph with a disjoint vocabulary matches nothing.
        let mut b = cspm_graph::GraphBuilder::new();
        let u = b.add_vertex(["zzz"]);
        let v = b.add_vertex(["yyy"]);
        b.add_edge(u, v).unwrap();
        let g = b.build().unwrap();
        assert!(f.transform_one(&g).iter().all(|&x| x == 0.0));
    }
}
