//! Node attribute completion (§VI-C, Table IV).
//!
//! Implements the completion task end to end:
//!
//! * [`CompletionTask`]: attribute-missing split of an attributed graph;
//! * six baseline models (NeighAggre, VAE, GCN, GAT, GraphSage, SAT) on
//!   the [`cspm_nn`] substrate — see DESIGN.md §5 for the documented
//!   simplifications relative to the original PyTorch implementations;
//! * the CSPM scoring module (Algorithm 5) and the score-fusion pipeline
//!   of Fig. 7 (normalise both vectors, multiply);
//! * Recall@K and NDCG@K metrics.

mod data;
mod experiment;
mod metrics;
mod models;
mod scoring;

pub use data::CompletionTask;
pub use experiment::{run_completion, CompletionOutcome, ExperimentConfig};
pub use metrics::{ndcg_at_k, rank_top_k, recall_at_k};
pub use models::{all_models, CompletionModel, Gat, Gcn, GraphSage, NeighAggre, Sat, Vae};
pub use scoring::{fuse_row, fuse_scores, CspmScorer};
