//! The six completion baselines of Table IV.
//!
//! All models output an `n × |A|` score matrix; higher = more likely the
//! node carries the attribute value. The neural models are faithful
//! simplifications on the [`cspm_nn`] substrate (see DESIGN.md §5):
//!
//! * **NeighAggre** — parameterless neighbourhood aggregation
//!   (Şimşek & Jensen, PNAS 2008): mean of observed neighbour rows.
//! * **VAE** — autoencoder on observed rows; attribute-missing rows
//!   decode from a zero input, so it mainly learns attribute priors
//!   (hence its weak Table IV showing).
//! * **GCN** — two propagation layers over `D⁻¹(A+I)`.
//! * **GAT** — propagation with feature-similarity attention weights
//!   (attention computed from observed features, fixed during training —
//!   a linearised single-head approximation).
//! * **GraphSage** — mean aggregator with an explicit self channel
//!   (`½ self + ½ neighbour-mean`).
//! * **SAT** — structure-attribute joint model: the input is the
//!   concatenation `[X ‖ ÂX]` so attribute-missing nodes still carry a
//!   structure-derived encoding, the published core idea of SAT.

use cspm_nn::{Matrix, NetConfig, SparseMatrix, TwoLayerNet};

use crate::data::CompletionTask;

/// A node attribute completion model.
pub trait CompletionModel {
    /// Display name used in Table IV.
    fn name(&self) -> &'static str;
    /// Scores every `(node, attribute)` pair; higher = more likely.
    fn predict(&self, task: &CompletionTask) -> Matrix;
}

fn neighbor_lists(task: &CompletionTask) -> Vec<Vec<u32>> {
    task.graph
        .vertices()
        .map(|v| task.graph.neighbors(v).to_vec())
        .collect()
}

/// Parameterless neighbour aggregation.
#[derive(Debug, Default, Clone, Copy)]
pub struct NeighAggre;

impl CompletionModel for NeighAggre {
    fn name(&self) -> &'static str {
        "NeighAggre"
    }

    fn predict(&self, task: &CompletionTask) -> Matrix {
        let p = SparseMatrix::normalized_adjacency(&neighbor_lists(task), 0.0);
        p.spmm(&task.x_observed)
    }
}

/// Autoencoder (VAE simplified to its deterministic reconstruction core).
#[derive(Debug, Clone, Copy)]
pub struct Vae(pub NetConfig);

impl CompletionModel for Vae {
    fn name(&self) -> &'static str {
        "VAE"
    }

    fn predict(&self, task: &CompletionTask) -> Matrix {
        let mut net = TwoLayerNet::new(
            task.x_observed.cols(),
            self.0.hidden,
            task.x_observed.cols(),
            self.0.seed,
        );
        net.fit(
            &task.x_observed,
            &task.targets,
            &task.train_mask,
            None,
            None,
            &self.0,
        );
        net.forward(&task.x_observed, None, None)
    }
}

/// Two-layer GCN.
#[derive(Debug, Clone, Copy)]
pub struct Gcn(pub NetConfig);

impl CompletionModel for Gcn {
    fn name(&self) -> &'static str {
        "GCN"
    }

    fn predict(&self, task: &CompletionTask) -> Matrix {
        let p = SparseMatrix::normalized_adjacency(&neighbor_lists(task), 1.0);
        let mut net = TwoLayerNet::new(
            task.x_observed.cols(),
            self.0.hidden,
            task.x_observed.cols(),
            self.0.seed,
        );
        net.fit(
            &task.x_observed,
            &task.targets,
            &task.train_mask,
            Some(&p),
            Some(&p),
            &self.0,
        );
        net.forward(&task.x_observed, Some(&p), Some(&p))
    }
}

/// Graph attention (linearised single head).
#[derive(Debug, Clone, Copy)]
pub struct Gat(pub NetConfig);

impl Gat {
    /// Attention operator: softmax over neighbours of the dot-product
    /// similarity between observed attribute rows, with a self loop.
    fn attention(task: &CompletionTask) -> SparseMatrix {
        let g = &task.graph;
        let x = &task.x_observed;
        let rows: Vec<Vec<(u32, f64)>> = g
            .vertices()
            .map(|v| {
                let mut entries: Vec<(u32, f64)> = Vec::with_capacity(g.degree(v) + 1);
                let sim = |u: u32| -> f64 {
                    x.row(v as usize)
                        .iter()
                        .zip(x.row(u as usize))
                        .map(|(&a, &b)| a * b)
                        .sum::<f64>()
                };
                entries.push((v, 1.0)); // self attention logit exp(0)=1
                for &u in g.neighbors(v) {
                    // LeakyReLU(sim) then exp; sim >= 0 for binary rows.
                    entries.push((u, (sim(u).min(8.0)).exp()));
                }
                let z: f64 = entries.iter().map(|(_, w)| w).sum();
                entries.iter().map(|&(u, w)| (u, w / z)).collect()
            })
            .collect();
        SparseMatrix::from_rows(g.vertex_count(), &rows)
    }
}

impl CompletionModel for Gat {
    fn name(&self) -> &'static str {
        "GAT"
    }

    fn predict(&self, task: &CompletionTask) -> Matrix {
        let p = Self::attention(task);
        let mut net = TwoLayerNet::new(
            task.x_observed.cols(),
            self.0.hidden,
            task.x_observed.cols(),
            self.0.seed,
        );
        net.fit(
            &task.x_observed,
            &task.targets,
            &task.train_mask,
            Some(&p),
            Some(&p),
            &self.0,
        );
        net.forward(&task.x_observed, Some(&p), Some(&p))
    }
}

/// GraphSage with a mean aggregator.
#[derive(Debug, Clone, Copy)]
pub struct GraphSage(pub NetConfig);

impl GraphSage {
    /// `½·self + ½·neighbour-mean` aggregation.
    fn aggregator(task: &CompletionTask) -> SparseMatrix {
        let g = &task.graph;
        let rows: Vec<Vec<(u32, f64)>> = g
            .vertices()
            .map(|v| {
                let deg = g.degree(v);
                let mut row = vec![(v, if deg == 0 { 1.0 } else { 0.5 })];
                row.extend(g.neighbors(v).iter().map(|&u| (u, 0.5 / deg as f64)));
                row
            })
            .collect();
        SparseMatrix::from_rows(g.vertex_count(), &rows)
    }
}

impl CompletionModel for GraphSage {
    fn name(&self) -> &'static str {
        "GraphSage"
    }

    fn predict(&self, task: &CompletionTask) -> Matrix {
        let p = Self::aggregator(task);
        let mut net = TwoLayerNet::new(
            task.x_observed.cols(),
            self.0.hidden,
            task.x_observed.cols(),
            self.0.seed,
        );
        net.fit(
            &task.x_observed,
            &task.targets,
            &task.train_mask,
            Some(&p),
            Some(&p),
            &self.0,
        );
        net.forward(&task.x_observed, Some(&p), Some(&p))
    }
}

/// SAT-style structure-attribute model.
#[derive(Debug, Clone, Copy)]
pub struct Sat(pub NetConfig);

impl Sat {
    fn augmented_input(task: &CompletionTask, p: &SparseMatrix) -> Matrix {
        let prop = p.spmm(&task.x_observed);
        let n = task.x_observed.rows();
        let a = task.x_observed.cols();
        let mut out = Matrix::zeros(n, 2 * a);
        for r in 0..n {
            out.row_mut(r)[..a].copy_from_slice(task.x_observed.row(r));
            out.row_mut(r)[a..].copy_from_slice(prop.row(r));
        }
        out
    }
}

impl CompletionModel for Sat {
    fn name(&self) -> &'static str {
        "SAT"
    }

    fn predict(&self, task: &CompletionTask) -> Matrix {
        let p = SparseMatrix::normalized_adjacency(&neighbor_lists(task), 1.0);
        let x = Self::augmented_input(task, &p);
        let mut net = TwoLayerNet::new(x.cols(), self.0.hidden, task.targets.cols(), self.0.seed);
        net.fit(
            &x,
            &task.targets,
            &task.train_mask,
            Some(&p),
            Some(&p),
            &self.0,
        );
        net.forward(&x, Some(&p), Some(&p))
    }
}

/// All six baselines, in the paper's Table IV order.
pub fn all_models(cfg: NetConfig) -> Vec<Box<dyn CompletionModel>> {
    vec![
        Box::new(NeighAggre),
        Box::new(Vae(cfg)),
        Box::new(Gcn(cfg)),
        Box::new(Gat(cfg)),
        Box::new(GraphSage(cfg)),
        Box::new(Sat(cfg)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cspm_datasets::{citation_completion, CompletionKind, Scale};

    fn task() -> CompletionTask {
        let d = citation_completion(CompletionKind::Cora, Scale::Tiny, 3);
        CompletionTask::split(&d.graph, 0.4, 9)
    }

    fn quick_cfg() -> NetConfig {
        NetConfig {
            hidden: 24,
            epochs: 150,
            ..Default::default()
        }
    }

    #[test]
    fn neighaggre_averages_observed_neighbours() {
        let t = task();
        let scores = NeighAggre.predict(&t);
        assert_eq!(scores.rows(), t.graph.vertex_count());
        assert_eq!(scores.cols(), t.graph.attr_count());
        // Scores are convex combinations of 0/1 rows.
        assert!(scores
            .data()
            .iter()
            .all(|&s| (0.0..=1.0 + 1e-9).contains(&s)));
    }

    #[test]
    fn all_models_produce_full_score_matrices() {
        let t = task();
        for model in all_models(quick_cfg()) {
            let s = model.predict(&t);
            assert_eq!(s.rows(), t.graph.vertex_count(), "{}", model.name());
            assert_eq!(s.cols(), t.graph.attr_count(), "{}", model.name());
            assert!(s.data().iter().all(|v| v.is_finite()), "{}", model.name());
        }
    }

    #[test]
    fn gat_attention_rows_are_distributions() {
        let t = task();
        let p = Gat::attention(&t);
        for r in 0..p.n_rows() {
            let sum: f64 = p.row(r).map(|(_, v)| v).sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn gcn_beats_vae_on_homophilous_data() {
        // Structural sanity: with hidden test rows, propagation models see
        // neighbour evidence while the autoencoder sees zeros.
        use crate::metrics::recall_at_k;
        let t = task();
        let gcn = Gcn(quick_cfg()).predict(&t);
        let vae = Vae(quick_cfg()).predict(&t);
        let eval = |scores: &Matrix| {
            let mut total = 0.0;
            for &v in &t.test_nodes {
                total += recall_at_k(scores.row(v as usize), t.truth(v), 10);
            }
            total / t.test_nodes.len() as f64
        };
        assert!(
            eval(&gcn) > eval(&vae),
            "gcn {} should beat vae {}",
            eval(&gcn),
            eval(&vae)
        );
    }
}
