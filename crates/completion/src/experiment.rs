//! The Table IV experiment driver: every baseline, plain and +CSPM.

use cspm_nn::{Matrix, NetConfig};

use crate::data::CompletionTask;
use crate::metrics::{ndcg_at_k, recall_at_k};
use crate::models::all_models;
use crate::scoring::{fuse_scores, CspmScorer};

/// Configuration of a completion experiment.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Fraction of attribute-missing nodes (the paper hides 40%).
    pub test_fraction: f64,
    /// Split / initialisation seed.
    pub seed: u64,
    /// Neural hyper-parameters shared by all trained baselines.
    pub net: NetConfig,
    /// The three K values to report (dataset dependent, Table IV).
    pub ks: [usize; 3],
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            test_fraction: 0.4,
            seed: 23,
            net: NetConfig::default(),
            ks: [10, 20, 50],
        }
    }
}

/// Metrics of one model variant.
#[derive(Debug, Clone)]
pub struct CompletionOutcome {
    /// Model display name (`"GCN"` or `"CSPM+GCN"`).
    pub model: String,
    /// Recall@K for the three configured K values.
    pub recall: [f64; 3],
    /// NDCG@K for the three configured K values.
    pub ndcg: [f64; 3],
}

fn evaluate(
    task: &CompletionTask,
    scores: &Matrix,
    ks: [usize; 3],
    name: String,
) -> CompletionOutcome {
    let mut recall = [0.0; 3];
    let mut ndcg = [0.0; 3];
    for &v in &task.test_nodes {
        let row = scores.row(v as usize);
        let truth = task.truth(v);
        for (i, &k) in ks.iter().enumerate() {
            recall[i] += recall_at_k(row, truth, k);
            ndcg[i] += ndcg_at_k(row, truth, k);
        }
    }
    let n = task.test_nodes.len().max(1) as f64;
    for i in 0..3 {
        recall[i] /= n;
        ndcg[i] /= n;
    }
    CompletionOutcome {
        model: name,
        recall,
        ndcg,
    }
}

/// Runs the full Table IV protocol on one graph: for each baseline,
/// evaluates the plain model and the CSPM-fused variant. Returns
/// `(plain, fused)` pairs in the paper's model order.
pub fn run_completion(
    graph: &cspm_graph::AttributedGraph,
    cfg: &ExperimentConfig,
) -> Vec<(CompletionOutcome, CompletionOutcome)> {
    let task = CompletionTask::split(graph, cfg.test_fraction, cfg.seed);
    let scorer = CspmScorer::fit(&task);
    let cspm_scores = scorer.score_all(&task);

    let mut out = Vec::new();
    for model in all_models(cfg.net) {
        let plain_scores = model.predict(&task);
        let fused_scores = fuse_scores(&plain_scores, &cspm_scores);
        let plain = evaluate(&task, &plain_scores, cfg.ks, model.name().to_owned());
        let fused = evaluate(
            &task,
            &fused_scores,
            cfg.ks,
            format!("CSPM+{}", model.name()),
        );
        out.push((plain, fused));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cspm_datasets::{citation_completion, CompletionKind, Scale};

    #[test]
    fn table4_protocol_runs_and_cspm_helps_on_average() {
        let d = citation_completion(CompletionKind::Cora, Scale::Tiny, 3);
        let cfg = ExperimentConfig {
            net: NetConfig {
                hidden: 16,
                epochs: 40,
                ..Default::default()
            },
            ks: [5, 10, 20],
            ..Default::default()
        };
        let rows = run_completion(&d.graph, &cfg);
        assert_eq!(rows.len(), 6);
        // Average improvement across models must be positive — the
        // paper's headline claim ("all the baseline algorithms are
        // improved with different degrees", §VI-C).
        let mut deltas = 0.0;
        for (plain, fused) in &rows {
            assert!(fused.model.starts_with("CSPM+"));
            deltas += fused.recall[1] - plain.recall[1];
            for i in 0..3 {
                assert!((0.0..=1.0).contains(&plain.recall[i]));
                assert!((0.0..=1.0).contains(&fused.ndcg[i]));
            }
        }
        assert!(
            deltas > 0.0,
            "CSPM fusion should help on average, delta {deltas}"
        );
    }
}
