//! The attribute-missing completion task.

use cspm_graph::{AttributedGraph, VertexId};
use cspm_nn::Matrix;
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, SeedableRng};

/// A completion task: a graph, a train/test node split, the observed
/// binary attribute matrix (test rows zeroed) and the ground truth.
#[derive(Debug, Clone)]
pub struct CompletionTask {
    /// The full attributed graph (ground-truth labels everywhere).
    pub graph: AttributedGraph,
    /// Observed attribute matrix `n × |A|`: test-node rows are zeroed.
    pub x_observed: Matrix,
    /// Ground-truth attribute matrix `n × |A|`.
    pub targets: Matrix,
    /// True for nodes whose attributes are observed (training rows).
    pub train_mask: Vec<bool>,
    /// The attribute-missing nodes to complete.
    pub test_nodes: Vec<VertexId>,
}

impl CompletionTask {
    /// Splits `graph` with `test_fraction` of nodes attribute-missing
    /// (the paper's protocol hides whole nodes' attribute sets).
    pub fn split(graph: &AttributedGraph, test_fraction: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&test_fraction));
        let n = graph.vertex_count();
        let a = graph.attr_count();
        let mut order: Vec<VertexId> = graph.vertices().collect();
        let mut rng = StdRng::seed_from_u64(seed);
        order.shuffle(&mut rng);
        let n_test = (n as f64 * test_fraction) as usize;
        let test_nodes: Vec<VertexId> = order[..n_test].to_vec();
        let mut train_mask = vec![true; n];
        for &v in &test_nodes {
            train_mask[v as usize] = false;
        }

        let mut targets = Matrix::zeros(n, a);
        for v in graph.vertices() {
            for &attr in graph.labels(v) {
                targets.set(v as usize, attr as usize, 1.0);
            }
        }
        let mut x_observed = targets.clone();
        for &v in &test_nodes {
            x_observed.row_mut(v as usize).fill(0.0);
        }

        Self {
            graph: graph.clone(),
            x_observed,
            targets,
            train_mask,
            test_nodes,
        }
    }

    /// The graph with test-node attributes removed — what CSPM is allowed
    /// to mine from (no leakage of hidden attributes).
    ///
    /// The original attribute table is preserved so that attribute ids in
    /// the mined model index the same values as in the full graph.
    pub fn observed_graph(&self) -> AttributedGraph {
        let g = &self.graph;
        let labels = g
            .vertices()
            .map(|v| {
                if self.train_mask[v as usize] {
                    g.labels(v).to_vec()
                } else {
                    Vec::new()
                }
            })
            .collect();
        AttributedGraph::from_edge_list(labels, g.attrs().clone(), g.edges())
            .expect("edges of a valid graph remain valid")
    }

    /// Observed attribute-value ids of `v`'s neighbours (Algorithm 5's
    /// `neighbor_attributes`).
    pub fn neighbor_attributes(&self, v: VertexId) -> Vec<cspm_graph::AttrId> {
        let mut out: Vec<cspm_graph::AttrId> = self
            .graph
            .neighbors(v)
            .iter()
            .filter(|&&u| self.train_mask[u as usize])
            .flat_map(|&u| self.graph.labels(u).iter().copied())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Ground-truth attribute ids of a node.
    pub fn truth(&self, v: VertexId) -> &[cspm_graph::AttrId] {
        self.graph.labels(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cspm_datasets::{citation_completion, CompletionKind, Scale};

    fn task() -> CompletionTask {
        let d = citation_completion(CompletionKind::Cora, Scale::Tiny, 3);
        CompletionTask::split(&d.graph, 0.4, 9)
    }

    #[test]
    fn split_hides_test_rows() {
        let t = task();
        let n_test = t.test_nodes.len();
        assert!(n_test > 0 && n_test < t.graph.vertex_count());
        for &v in &t.test_nodes {
            assert!(!t.train_mask[v as usize]);
            assert!(t.x_observed.row(v as usize).iter().all(|&x| x == 0.0));
            // But the ground truth still knows them.
            assert!(t.targets.row(v as usize).contains(&1.0));
        }
    }

    #[test]
    fn observed_graph_has_no_test_labels() {
        let t = task();
        let og = t.observed_graph();
        for &v in &t.test_nodes {
            assert!(og.labels(v).is_empty());
        }
        // Topology is preserved.
        assert_eq!(og.edge_count(), t.graph.edge_count());
        let train_total: usize = t
            .graph
            .vertices()
            .filter(|&v| t.train_mask[v as usize])
            .map(|v| t.graph.labels(v).len())
            .sum();
        assert_eq!(og.label_pair_count(), train_total);
    }

    #[test]
    fn neighbor_attributes_only_use_observed() {
        let t = task();
        for &v in t.test_nodes.iter().take(5) {
            let nbrs = t.neighbor_attributes(v);
            // Every reported attribute must come from an observed neighbour.
            for a in nbrs {
                let ok = t
                    .graph
                    .neighbors(v)
                    .iter()
                    .any(|&u| t.train_mask[u as usize] && t.graph.labels(u).contains(&a));
                assert!(ok);
            }
        }
    }

    #[test]
    fn split_is_deterministic() {
        let d = citation_completion(CompletionKind::Cora, Scale::Tiny, 3);
        let a = CompletionTask::split(&d.graph, 0.4, 9);
        let b = CompletionTask::split(&d.graph, 0.4, 9);
        assert_eq!(a.test_nodes, b.test_nodes);
    }
}
