//! Ranking metrics: Recall@K and NDCG@K (binary relevance).

use cspm_graph::AttrId;

/// Indices of the `k` largest scores, best first (ties by index).
pub fn rank_top_k(scores: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx.truncate(k);
    idx
}

/// `|top-K ∩ truth| / |truth|`.
pub fn recall_at_k(scores: &[f64], truth: &[AttrId], k: usize) -> f64 {
    if truth.is_empty() {
        return 0.0;
    }
    let top = rank_top_k(scores, k);
    let hits = top
        .iter()
        .filter(|&&i| truth.binary_search(&(i as AttrId)).is_ok())
        .count();
    hits as f64 / truth.len() as f64
}

/// Normalised discounted cumulative gain at `k` with binary relevance:
/// `DCG@k / IDCG@k`, `DCG = Σ rel_i / log2(i+1)` over rank positions
/// `i = 1..k`.
pub fn ndcg_at_k(scores: &[f64], truth: &[AttrId], k: usize) -> f64 {
    if truth.is_empty() {
        return 0.0;
    }
    let top = rank_top_k(scores, k);
    let dcg: f64 = top
        .iter()
        .enumerate()
        .filter(|(_, &i)| truth.binary_search(&(i as AttrId)).is_ok())
        .map(|(rank, _)| 1.0 / ((rank + 2) as f64).log2())
        .sum();
    let ideal_hits = truth.len().min(k);
    let idcg: f64 = (0..ideal_hits).map(|r| 1.0 / ((r + 2) as f64).log2()).sum();
    dcg / idcg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_orders_by_score() {
        let s = [0.1, 0.9, 0.5, 0.7];
        assert_eq!(rank_top_k(&s, 2), vec![1, 3]);
        assert_eq!(rank_top_k(&s, 10).len(), 4);
    }

    #[test]
    fn recall_counts_hits() {
        let s = [0.9, 0.1, 0.8, 0.2];
        // truth = {0, 3}; top-2 = {0, 2} → one hit of two truths.
        assert!((recall_at_k(&s, &[0, 3], 2) - 0.5).abs() < 1e-12);
        assert_eq!(recall_at_k(&s, &[], 2), 0.0);
        // top-4 recovers everything.
        assert!((recall_at_k(&s, &[0, 3], 4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ndcg_perfect_ranking_is_one() {
        let s = [0.9, 0.8, 0.1, 0.0];
        assert!((ndcg_at_k(&s, &[0, 1], 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ndcg_penalises_late_hits() {
        // Same truth {0, 3}: hits at ranks 1–2 vs ranks 1 and 4.
        let early = [0.9, 0.1, 0.05, 0.8]; // 3 ranks second
        let late = [0.9, 0.5, 0.4, 0.1]; // 3 ranks last
        let t = [0u32, 3];
        let e = ndcg_at_k(&early, &t, 4);
        let l = ndcg_at_k(&late, &t, 4);
        assert!((e - 1.0).abs() < 1e-12);
        assert!(e > l, "{e} vs {l}");
        assert!(l > 0.0);
    }

    #[test]
    fn ndcg_is_bounded() {
        let s = [0.3, 0.1, 0.9];
        for k in 1..=3 {
            let v = ndcg_at_k(&s, &[1], k);
            assert!((0.0..=1.0).contains(&v));
        }
    }
}
