//! The CSPM scoring module (Algorithm 5) and score fusion (Fig. 7).

use cspm_core::{cspm_partial, CspmConfig, MinedModel};
use cspm_nn::Matrix;

use crate::data::CompletionTask;

/// Scores attribute values for attribute-missing nodes from the mined
/// a-star model (Algorithm 5).
///
/// For each a-star `S = (Sc, SL)` matching a node's neighbourhood, the
/// candidate core values `Sc` receive the score `cl = −w · L(Scode)`
/// where `w ∈ [1, 2]` grows as the leafset diverges from the observed
/// neighbour attributes (`w = 2 − |SL ∩ N| / |SL|`); each value keeps its
/// maximum score over all a-stars.
#[derive(Debug, Clone)]
pub struct CspmScorer {
    model: MinedModel,
    n_attrs: usize,
}

impl CspmScorer {
    /// Mines the a-star model on the *observed* graph of the task (test
    /// attributes are hidden from the miner — no leakage).
    pub fn fit(task: &CompletionTask) -> Self {
        let observed = task.observed_graph();
        let result = cspm_partial(&observed, CspmConfig::default());
        Self {
            model: result.model,
            n_attrs: task.graph.attr_count(),
        }
    }

    /// Builds a scorer from an already-mined model.
    pub fn from_model(model: MinedModel, n_attrs: usize) -> Self {
        Self { model, n_attrs }
    }

    /// The underlying mined model.
    pub fn model(&self) -> &MinedModel {
        &self.model
    }

    /// Algorithm 5: scores for all possible attribute values of node `v`.
    /// Values with no supporting a-star keep `-∞`.
    pub fn score_node(&self, task: &CompletionTask, v: cspm_graph::VertexId) -> Vec<f64> {
        let neighbors = task.neighbor_attributes(v);
        let mut scores = vec![f64::NEG_INFINITY; self.n_attrs];
        for mined in self.model.astars() {
            let leafset = mined.astar.leafset();
            let overlap = leafset
                .iter()
                .filter(|a| neighbors.binary_search(a).is_ok())
                .count();
            // Algorithm 5 weighs *every* a-star: zero overlap yields the
            // maximal weight w = 2 (most dissimilar), not a skip, so any
            // core value of any pattern gets at least a frequency-prior
            // score −2·L(Scode).
            let similarity = overlap as f64 / leafset.len() as f64;
            let w = 2.0 - similarity;
            let cl = -w * mined.code_len;
            for &core in mined.astar.coreset() {
                let slot = &mut scores[core as usize];
                if cl > *slot {
                    *slot = cl;
                }
            }
        }
        scores
    }

    /// Score matrix over all nodes (rows for observed nodes are computed
    /// the same way; only test rows are normally consumed).
    pub fn score_all(&self, task: &CompletionTask) -> Matrix {
        let n = task.graph.vertex_count();
        let mut out = Matrix::zeros(n, self.n_attrs);
        for v in 0..n {
            let row = self.score_node(task, v as u32);
            out.row_mut(v).copy_from_slice(&row);
        }
        out
    }
}

/// Fig. 7 fusion: min-max normalise the model probabilities and the CSPM
/// scores per node, then multiply elementwise.
///
/// `-∞` CSPM entries (no pattern evidence) map to a small floor rather
/// than zero so the fusion modulates the model's ranking instead of
/// annihilating it where pattern coverage is incomplete.
pub fn fuse_scores(model_scores: &Matrix, cspm_scores: &Matrix) -> Matrix {
    assert_eq!(model_scores.rows(), cspm_scores.rows());
    assert_eq!(model_scores.cols(), cspm_scores.cols());
    const FLOOR: f64 = 0.05;
    let mut out = Matrix::zeros(model_scores.rows(), model_scores.cols());
    for r in 0..model_scores.rows() {
        let m = normalize_row(model_scores.row(r), 0.0);
        let c = normalize_row(cspm_scores.row(r), FLOOR);
        let dst = out.row_mut(r);
        for i in 0..m.len() {
            dst[i] = m[i] * c[i];
        }
    }
    out
}

/// Min-max normalisation over the finite entries of `row`; non-finite
/// entries map to `floor`. A constant row maps to all-ones (no signal).
fn normalize_row(row: &[f64], floor: f64) -> Vec<f64> {
    let finite: Vec<f64> = row.iter().copied().filter(|x| x.is_finite()).collect();
    if finite.is_empty() {
        return vec![1.0; row.len()];
    }
    let min = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let max = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if (max - min).abs() < 1e-15 {
        return vec![1.0; row.len()];
    }
    row.iter()
        .map(|&x| {
            if x.is_finite() {
                floor + (1.0 - floor) * (x - min) / (max - min)
            } else {
                floor
            }
        })
        .collect()
}

/// Convenience: `normalize(model) ⊙ normalize(cspm)` restricted to one
/// node row.
pub fn fuse_row(model_row: &[f64], cspm_row: &[f64]) -> Vec<f64> {
    let m = normalize_row(model_row, 0.0);
    let c = normalize_row(cspm_row, 0.05);
    m.iter().zip(&c).map(|(&a, &b)| a * b).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::recall_at_k;
    use cspm_datasets::{citation_completion, CompletionKind, Scale};

    fn task() -> CompletionTask {
        let d = citation_completion(CompletionKind::Cora, Scale::Tiny, 3);
        CompletionTask::split(&d.graph, 0.4, 9)
    }

    #[test]
    fn scorer_produces_useful_rankings() {
        let t = task();
        let scorer = CspmScorer::fit(&t);
        assert!(!scorer.model().is_empty());
        // The CSPM scores alone should beat random ranking on average.
        let mut cspm_recall = 0.0;
        let mut random_recall = 0.0;
        let k = 10;
        for &v in &t.test_nodes {
            let row = scorer.score_node(&t, v);
            cspm_recall += recall_at_k(&row, t.truth(v), k);
            random_recall += k as f64 / t.graph.attr_count() as f64; // expected random
        }
        assert!(
            cspm_recall > random_recall,
            "cspm {cspm_recall} vs random {random_recall}"
        );
    }

    #[test]
    fn normalize_row_handles_edge_cases() {
        assert_eq!(normalize_row(&[], 0.0), Vec::<f64>::new());
        assert_eq!(normalize_row(&[2.0, 2.0], 0.0), vec![1.0, 1.0]);
        let n = normalize_row(&[0.0, 1.0, f64::NEG_INFINITY], 0.05);
        assert!((n[0] - 0.05).abs() < 1e-12);
        assert!((n[1] - 1.0).abs() < 1e-12);
        assert!((n[2] - 0.05).abs() < 1e-12);
    }

    #[test]
    fn fusion_shape_and_bounds() {
        let a = Matrix::from_vec(2, 3, vec![0.1, 0.9, 0.5, 0.2, 0.4, 0.6]);
        let b = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let f = fuse_scores(&a, &b);
        assert_eq!(f.rows(), 2);
        assert!(f.data().iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn fusion_preserves_agreeing_top_item() {
        // When both rankings agree on the best item, fusion keeps it.
        let m = [0.9, 0.5, 0.1];
        let c = [10.0, 1.0, 0.0];
        let f = fuse_row(&m, &c);
        assert!(f[0] > f[1] && f[1] > f[2]);
    }
}
