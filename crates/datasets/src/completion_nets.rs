//! Cora/Citeseer/DBLP-like citation graphs for the node attribute
//! completion task (Table IV).
//!
//! Vertices are documents with a latent class; attribute values are
//! bag-of-words tokens drawn from class-conditional Zipf distributions;
//! edges are class-homophilous citations. The property Table IV relies
//! on — a node's attributes are predictable from its neighbours' — is
//! therefore planted directly.

use cspm_graph::GraphBuilder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::util::{community_edges, ensure_connected, zipf};
use crate::Scale;

/// Which benchmark the generator mimics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionKind {
    /// Cora-like: 2708 nodes, 1433 words, 7 classes, K ∈ {10, 20, 50}.
    Cora,
    /// Citeseer-like: 3327 nodes, 3703 words, 6 classes, K ∈ {10, 20, 50}.
    Citeseer,
    /// DBLP-like: fewer attribute values per node, K ∈ {3, 5, 10}.
    Dblp,
}

/// A generated completion benchmark.
#[derive(Debug, Clone)]
pub struct CompletionDataset {
    /// Dataset name for reports.
    pub name: &'static str,
    /// The attributed graph (documents + words).
    pub graph: cspm_graph::AttributedGraph,
    /// Latent class per vertex (not visible to models; used only for
    /// analysis).
    pub classes: Vec<usize>,
    /// The three K values Table IV reports for this dataset.
    pub ks: [usize; 3],
}

fn params(kind: CompletionKind, scale: Scale) -> (usize, usize, usize, usize, usize, [usize; 3]) {
    // (nodes, edges, vocab, classes, words_per_node, ks)
    match (kind, scale) {
        (CompletionKind::Cora, Scale::Paper) => (2708, 5429, 1433, 7, 18, [10, 20, 50]),
        (CompletionKind::Cora, Scale::Small) => (600, 1400, 360, 7, 14, [10, 20, 50]),
        (CompletionKind::Cora, Scale::Tiny) => (120, 300, 80, 4, 8, [5, 10, 20]),
        (CompletionKind::Citeseer, Scale::Paper) => (3327, 4732, 3703, 6, 20, [10, 20, 50]),
        (CompletionKind::Citeseer, Scale::Small) => (700, 1200, 500, 6, 15, [10, 20, 50]),
        (CompletionKind::Citeseer, Scale::Tiny) => (140, 280, 100, 4, 8, [5, 10, 20]),
        (CompletionKind::Dblp, Scale::Paper) => (2723, 3464, 300, 8, 5, [3, 5, 10]),
        (CompletionKind::Dblp, Scale::Small) => (600, 900, 120, 8, 4, [3, 5, 10]),
        (CompletionKind::Dblp, Scale::Tiny) => (120, 220, 50, 4, 3, [3, 5, 10]),
    }
}

/// Generates a completion benchmark.
pub fn citation_completion(kind: CompletionKind, scale: Scale, seed: u64) -> CompletionDataset {
    let (n, m, vocab, n_classes, words_per_node, ks) = params(kind, scale);
    let mut rng = StdRng::seed_from_u64(seed);

    // Class-conditional vocabularies: each class owns an exclusive slice
    // of ~80% of the vocabulary; 20% is shared background. Class words
    // are sampled nearly uniformly inside the class slice so class↔word
    // associations are crisp (real bag-of-words benchmarks behave this
    // way: topic words are strongly class-conditioned).
    let shared = (vocab as f64 * 0.2) as usize;
    let per_class = (vocab - shared) / n_classes;

    let mut b = GraphBuilder::with_capacity(n);
    let mut classes = Vec::with_capacity(n);
    let mut communities: Vec<Vec<u32>> = vec![Vec::new(); n_classes];
    for _ in 0..n {
        let class = rng.gen_range(0..n_classes);
        classes.push(class);
        let mut words: Vec<String> = Vec::with_capacity(words_per_node);
        for _ in 0..words_per_node {
            if rng.gen::<f64>() < 0.85 {
                // Class word, near-uniform inside the class slice.
                let w = shared + class * per_class + zipf(&mut rng, per_class.max(1), 0.6);
                words.push(format!("w{w}"));
            } else {
                let w = zipf(&mut rng, shared.max(1), 0.6);
                words.push(format!("w{w}"));
            }
        }
        let id = b.add_vertex(words.iter());
        communities[class].push(id);
    }
    community_edges(&mut b, &mut rng, n, m, 0.85, &communities);
    let graph = ensure_connected(b, &mut rng);

    let name = match kind {
        CompletionKind::Cora => "Cora(synthetic)",
        CompletionKind::Citeseer => "Citeseer(synthetic)",
        CompletionKind::Dblp => "DBLP(synthetic)",
    };
    CompletionDataset {
        name,
        graph,
        classes,
        ks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cora_paper_scale() {
        let d = citation_completion(CompletionKind::Cora, Scale::Paper, 4);
        assert_eq!(d.graph.vertex_count(), 2708);
        assert!(d.graph.attr_count() <= 1433);
        assert_eq!(d.ks, [10, 20, 50]);
        assert!(d.graph.is_connected());
    }

    #[test]
    fn dblp_has_fewer_words_per_node() {
        let cora = citation_completion(CompletionKind::Cora, Scale::Small, 4);
        let dblp = citation_completion(CompletionKind::Dblp, Scale::Small, 4);
        assert!(dblp.graph.mean_labels_per_vertex() < cora.graph.mean_labels_per_vertex());
        assert_eq!(dblp.ks, [3, 5, 10]);
    }

    #[test]
    fn same_class_nodes_share_words_more() {
        let d = citation_completion(CompletionKind::Cora, Scale::Tiny, 4);
        let g = &d.graph;
        let overlap = |u: u32, v: u32| {
            g.labels(u)
                .iter()
                .filter(|a| g.labels(v).contains(a))
                .count()
        };
        let mut same = (0usize, 0usize);
        let mut diff = (0usize, 0usize);
        for u in 0..g.vertex_count() as u32 {
            for v in (u + 1)..g.vertex_count() as u32 {
                let o = overlap(u, v);
                if d.classes[u as usize] == d.classes[v as usize] {
                    same = (same.0 + o, same.1 + 1);
                } else {
                    diff = (diff.0 + o, diff.1 + 1);
                }
            }
        }
        let same_avg = same.0 as f64 / same.1 as f64;
        let diff_avg = diff.0 as f64 / diff.1 as f64;
        assert!(
            same_avg > diff_avg * 1.5,
            "same {same_avg} vs diff {diff_avg}"
        );
    }
}
