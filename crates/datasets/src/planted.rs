//! Generic planted-pattern generator with ground truth.
//!
//! Creates a graph in which a given list of a-stars occurs a controlled
//! number of times, embedded in attribute noise — the instrument used to
//! verify that CSPM rediscovers known structure (Fig. 6 shape) and to
//! measure ranking quality.

use cspm_graph::{AStar, AttributedGraph, GraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::util::ensure_connected;

/// Configuration for [`planted_astars`].
#[derive(Debug, Clone, Copy)]
pub struct PlantedConfig {
    /// Occurrences planted per pattern.
    pub occurrences_per_pattern: usize,
    /// Number of pure-noise vertices.
    pub background_vertices: usize,
    /// Number of noise attribute values.
    pub background_attrs: usize,
    /// Expected noise attribute values added to *every* vertex.
    pub noise_labels_per_vertex: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PlantedConfig {
    fn default() -> Self {
        Self {
            occurrences_per_pattern: 30,
            background_vertices: 100,
            background_attrs: 20,
            noise_labels_per_vertex: 0.5,
            seed: 7,
        }
    }
}

/// Ground truth returned alongside the generated graph.
#[derive(Debug, Clone)]
pub struct PlantedTruth {
    /// The planted a-stars, resolved to the generated graph's attribute
    /// ids.
    pub astars: Vec<AStar>,
}

impl PlantedTruth {
    /// Fraction of planted patterns for which `predicate` holds.
    pub fn recall(&self, predicate: impl Fn(&AStar) -> bool) -> f64 {
        if self.astars.is_empty() {
            return 1.0;
        }
        self.astars.iter().filter(|a| predicate(a)).count() as f64 / self.astars.len() as f64
    }
}

/// Generates a connected attributed graph in which each `(coreset,
/// leafset)` pattern (given as attribute-value names) occurs
/// `occurrences_per_pattern` times, plus background noise.
pub fn planted_astars(
    patterns: &[(&[&str], &[&str])],
    cfg: PlantedConfig,
) -> (AttributedGraph, PlantedTruth) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut b = GraphBuilder::new();

    let noise_attr =
        |rng: &mut StdRng| format!("noise{}", rng.gen_range(0..cfg.background_attrs.max(1)));

    // Plant each occurrence as a hub with its leaf values spread over
    // 1–3 leaf vertices.
    for (core, leaves) in patterns {
        for _ in 0..cfg.occurrences_per_pattern {
            let hub = b.add_vertex(core.iter().copied());
            let n_leaf_vertices = rng.gen_range(1..=leaves.len().clamp(1, 3));
            let mut leaf_ids = Vec::new();
            for _ in 0..n_leaf_vertices {
                leaf_ids.push(b.add_vertex(std::iter::empty::<&str>()));
            }
            for (i, value) in leaves.iter().enumerate() {
                let leaf = leaf_ids[i % leaf_ids.len()];
                b.add_label(leaf, value).unwrap();
            }
            for &leaf in &leaf_ids {
                b.add_edge(hub, leaf).unwrap();
            }
            // Noise labels on the hub.
            if rng.gen::<f64>() < cfg.noise_labels_per_vertex {
                let a = noise_attr(&mut rng);
                b.add_label(hub, &a).unwrap();
            }
        }
    }

    // Background vertices and random edges.
    let start = b.vertex_count() as u32;
    for _ in 0..cfg.background_vertices {
        let v = b.add_vertex(std::iter::empty::<&str>());
        let a = noise_attr(&mut rng);
        b.add_label(v, &a).unwrap();
        if rng.gen::<f64>() < cfg.noise_labels_per_vertex {
            let a = noise_attr(&mut rng);
            b.add_label(v, &a).unwrap();
        }
    }
    let n = b.vertex_count();
    for _ in 0..cfg.background_vertices * 2 {
        let u = rng.gen_range(0..n) as u32;
        let v = rng.gen_range(start.min(n as u32 - 1)..n as u32);
        if u != v {
            let _ = b.add_edge(u, v);
        }
    }

    let graph = ensure_connected(b, &mut rng);
    let truth = PlantedTruth {
        astars: patterns
            .iter()
            .map(|(core, leaves)| {
                AStar::new(
                    core.iter()
                        .map(|s| graph.attrs().get(s).expect("planted attr"))
                        .collect(),
                    leaves
                        .iter()
                        .map(|s| graph.attrs().get(s).expect("planted attr"))
                        .collect(),
                )
            })
            .collect(),
    };
    (graph, truth)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planted_patterns_occur_at_least_planted_times() {
        let (g, truth) = planted_astars(
            &[(&["x"], &["p", "q"]), (&["y"], &["r"])],
            PlantedConfig {
                occurrences_per_pattern: 15,
                ..Default::default()
            },
        );
        assert!(g.is_connected());
        for astar in &truth.astars {
            assert!(
                astar.support(&g) >= 15,
                "support {} below planted count",
                astar.support(&g)
            );
        }
    }

    #[test]
    fn recall_helper() {
        let (_, truth) = planted_astars(&[(&["x"], &["p"])], PlantedConfig::default());
        assert_eq!(truth.recall(|_| true), 1.0);
        assert_eq!(truth.recall(|_| false), 0.0);
    }
}
