//! USFlight-like airport network (Table II row 3).
//!
//! Airports (vertices) linked by flight routes (edges); attribute values
//! are traffic-trend indicators (`NbDepart+`, `DelayArriv-`, …). The
//! §VI-B(2) pattern is planted: when an airport reduces departures
//! (`NbDepart-`), connected airports tend to show `NbDepart+` and
//! `DelayArriv-` (traffic shifts to them and their delays drop).

use cspm_graph::GraphBuilder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::util::{ensure_connected, zipf};
use crate::{Dataset, Scale};

const INDICATORS: &[&str] = &[
    "NbDepart",
    "NbArriv",
    "DelayDepart",
    "DelayArriv",
    "NbCancel",
    "NbDivert",
    "Capacity",
    "NbPassenger",
];
const TRENDS: &[&str] = &["+", "-", "="];

fn scale_params(scale: Scale) -> (usize, usize, usize) {
    // (airports, routes, hubs)
    match scale {
        Scale::Paper => (280, 4030, 24),
        Scale::Small => (120, 900, 10),
        Scale::Tiny => (40, 160, 4),
    }
}

/// USFlight-like dataset with planted departure/delay correlations.
pub fn usflight_like(scale: Scale, seed: u64) -> Dataset {
    let (n, m, hubs) = scale_params(scale);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n);

    // Latent state: hubs are "shedding" airports with probability 1/2.
    let mut shedding = vec![false; n];
    for (v, slot) in shedding.iter_mut().enumerate() {
        let is_hub = v < hubs;
        *slot = is_hub && rng.gen::<f64>() < 0.5;
        b.add_vertices(1);
    }

    // Hub-and-spoke routes: every spoke connects to 1–3 hubs, hubs
    // interconnect densely; remaining budget is random spoke–spoke.
    let mut edges = 0usize;
    for h1 in 0..hubs {
        for h2 in h1 + 1..hubs {
            if rng.gen::<f64>() < 0.5 && edges < m && b.add_edge(h1 as u32, h2 as u32).is_ok() {
                edges += 1;
            }
        }
    }
    for v in hubs..n {
        let k = 1 + zipf(&mut rng, 3, 1.0);
        for _ in 0..k {
            if edges >= m {
                break;
            }
            let h = rng.gen_range(0..hubs) as u32;
            if !b.has_edge(v as u32, h) {
                let _ = b.add_edge(v as u32, h);
                edges += 1;
            }
        }
    }
    while edges < m {
        let u = rng.gen_range(0..n) as u32;
        let v = rng.gen_range(0..n) as u32;
        if u != v && !b.has_edge(u, v) {
            let _ = b.add_edge(u, v);
            edges += 1;
        }
    }

    // Attributes: planted rule around shedding hubs, noise elsewhere.
    // First mark neighbours of shedding hubs (before labels, degree-only
    // pass is not possible through the builder; we track hub adjacency).
    let probe = b.clone().build_unchecked();
    for v in 0..n {
        let near_shedding = probe
            .neighbors(v as u32)
            .iter()
            .any(|&u| shedding[u as usize]);
        if shedding[v] {
            b.add_label(v as u32, "NbDepart-").unwrap();
            if rng.gen::<f64>() < 0.6 {
                b.add_label(v as u32, "DelayDepart+").unwrap();
            }
        } else if near_shedding && rng.gen::<f64>() < 0.8 {
            // The §VI-B(2) pattern: connected airports absorb traffic.
            b.add_label(v as u32, "NbDepart+").unwrap();
            b.add_label(v as u32, "DelayArriv-").unwrap();
        }
        // Background noise indicators.
        let extra = zipf(&mut rng, 3, 1.0);
        for _ in 0..extra {
            let ind = INDICATORS[rng.gen_range(0..INDICATORS.len())];
            let tr = TRENDS[rng.gen_range(0..TRENDS.len())];
            b.add_label(v as u32, &format!("{ind}{tr}")).unwrap();
        }
    }

    let graph = ensure_connected(b, &mut rng);
    Dataset {
        name: "USFlight(synthetic)",
        category: "Airport",
        graph,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cspm_graph::AStar;

    #[test]
    fn paper_scale_matches_table2() {
        let d = usflight_like(Scale::Paper, 2);
        let (n, m, a) = d.statistics();
        assert_eq!(n, 280);
        assert!((4030..4120).contains(&m), "edges {m}");
        assert!(a <= INDICATORS.len() * TRENDS.len());
    }

    #[test]
    fn planted_pattern_has_high_support() {
        // The a-star ({NbDepart-}, {NbDepart+, DelayArriv-}) must occur
        // substantially more often than a random unplanted combination.
        let d = usflight_like(Scale::Paper, 2);
        let g = &d.graph;
        let at = |s: &str| g.attrs().get(s);
        let (Some(dep_minus), Some(dep_plus), Some(delay_minus)) =
            (at("NbDepart-"), at("NbDepart+"), at("DelayArriv-"))
        else {
            panic!("planted attributes missing");
        };
        let planted = AStar::new(vec![dep_minus], vec![dep_plus, delay_minus]);
        let support = planted.support(g);
        assert!(support >= 5, "planted support too low: {support}");
    }
}
