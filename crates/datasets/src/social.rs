//! Pokec-like social network with music-taste attributes (Table II
//! row 4).
//!
//! Two planted taste communities reproduce the §VI-B(3) patterns:
//! younger users cluster around `{rap, rock, metal, pop, sladaky}` and
//! older users around `{disko, oldies}`; a long Zipf tail of synthetic
//! genres provides the ~914-value attribute universe. At `Scale::Paper`
//! this generates 1.6M vertices / ~30M edges via the bulk constructor.

use cspm_graph::{AttrId, AttrTable, AttributedGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::util::zipf;
use crate::{Dataset, Scale};

const YOUNG: &[&str] = &["rap", "rock", "metal", "pop", "sladaky"];
const OLD: &[&str] = &["disko", "oldies", "folk", "dychovka"];

fn scale_params(scale: Scale) -> (usize, usize, usize) {
    // (users, friendships, n_genres)
    match scale {
        Scale::Paper => (1_632_803, 30_622_564, 914),
        Scale::Small => (30_000, 280_000, 300),
        Scale::Tiny => (400, 2_400, 60),
    }
}

/// Pokec-like dataset; deterministic per seed.
pub fn pokec_like(scale: Scale, seed: u64) -> Dataset {
    let (n, m, n_genres) = scale_params(scale);
    let mut rng = StdRng::seed_from_u64(seed);

    let mut attrs = AttrTable::new();
    let young: Vec<AttrId> = YOUNG.iter().map(|g| attrs.intern(g)).collect();
    let old: Vec<AttrId> = OLD.iter().map(|g| attrs.intern(g)).collect();
    let mut tail: Vec<AttrId> = Vec::new();
    while attrs.len() < n_genres {
        tail.push(attrs.intern(&format!("genre{}", attrs.len())));
    }

    // Community assignment: 55% young, 30% old, 15% mixed listeners.
    let mut labels: Vec<Vec<AttrId>> = Vec::with_capacity(n);
    let mut community = Vec::with_capacity(n);
    for _ in 0..n {
        let r = rng.gen::<f64>();
        let c = if r < 0.55 {
            0u8
        } else if r < 0.85 {
            1
        } else {
            2
        };
        community.push(c);
        let mut vals: Vec<AttrId> = Vec::new();
        match c {
            0 => {
                // A young user lists 2–4 of the young genres.
                let k = 2 + rng.gen_range(0..3);
                for _ in 0..k {
                    vals.push(young[rng.gen_range(0..young.len())]);
                }
            }
            1 => {
                let k = 1 + rng.gen_range(0..2);
                for _ in 0..k {
                    vals.push(old[rng.gen_range(0..old.len())]);
                }
            }
            _ => {}
        }
        // Tail genres for everyone (Zipf-popular).
        let extra = zipf(&mut rng, 3, 1.3);
        for _ in 0..extra {
            if !tail.is_empty() {
                vals.push(tail[zipf(&mut rng, tail.len(), 1.05)]);
            }
        }
        if vals.is_empty() {
            // Guarantee at least one attribute per user.
            vals.push(if rng.gen() { young[0] } else { old[0] });
        }
        labels.push(vals);
    }

    // Friendships: ring backbone (guarantees connectivity) + homophilous
    // random edges.
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(m + n);
    for v in 0..n as u32 {
        edges.push((v, (v + 1) % n as u32));
    }
    let remaining = m.saturating_sub(n);
    for _ in 0..remaining {
        let u = rng.gen_range(0..n) as u32;
        // 80% of friendships stay within the community: sample nearby in
        // community order via rejection (cheap at our community sizes).
        let v = if rng.gen::<f64>() < 0.8 {
            let mut v = rng.gen_range(0..n) as u32;
            for _ in 0..8 {
                if community[v as usize] == community[u as usize] && v != u {
                    break;
                }
                v = rng.gen_range(0..n) as u32;
            }
            v
        } else {
            rng.gen_range(0..n) as u32
        };
        if u != v {
            edges.push((u, v));
        }
    }

    let graph =
        AttributedGraph::from_edge_list(labels, attrs, edges).expect("generated edges are valid");
    Dataset {
        name: "Pokec(synthetic)",
        category: "Music",
        graph,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cspm_graph::AStar;

    #[test]
    fn tiny_scale_is_connected_with_planted_tastes() {
        let d = pokec_like(Scale::Tiny, 11);
        assert!(d.graph.is_connected());
        let g = &d.graph;
        let rap = g.attrs().get("rap").unwrap();
        let rock = g.attrs().get("rock").unwrap();
        let pop = g.attrs().get("pop").unwrap();
        // §VI-B(3): ({rap}, {rock, pop, …}) should be well-supported.
        let astar = AStar::new(vec![rap], vec![rock, pop]);
        assert!(astar.support(g) >= 10, "support {}", astar.support(g));
    }

    #[test]
    fn small_scale_statistics() {
        let d = pokec_like(Scale::Small, 12);
        let (n, m, a) = d.statistics();
        assert_eq!(n, 30_000);
        assert!(m > 250_000, "edges {m}");
        assert!(a <= 300);
    }

    #[test]
    fn every_user_has_a_taste() {
        let d = pokec_like(Scale::Tiny, 13);
        for v in d.graph.vertices() {
            assert!(!d.graph.labels(v).is_empty());
        }
    }
}
