//! USFlight route + airport attribute tables.
//!
//! The paper builds USFlight from BTS on-time tables: vertices are
//! airports, edges are operated routes, and attributes are discretised
//! traffic/delay indicators (`NbDepart+`, `Delay-`, …). Our interchange
//! cut (see `docs/FORMATS.md` §3) is two CSVs: the route table given as
//! `--input` with header `src,dst[,airline]` (airline ignored), and an
//! airport sidecar `<stem>.airports.csv` with header
//! `code,state,nb_depart,nb_arrive,delay` whose last three columns hold
//! trend levels `+`, `-` or `=` (above / below / near the national
//! median), pre-discretised exactly like the paper's attributes.

use std::fs::File;
use std::io::BufReader;
use std::path::{Path, PathBuf};

use super::error::IngestError;
use super::lines::{csv_fields, LineReader};
use super::{dataset_name, sidecar_path, GraphAssembler};

/// Streaming source over a route table + airport sidecar.
pub struct UsFlightSource {
    routes: PathBuf,
    airports: PathBuf,
}

impl UsFlightSource {
    /// Opens `routes` and resolves its `<stem>.airports.csv` sidecar.
    pub fn open(routes: &Path) -> Result<Self, IngestError> {
        let airports = sidecar_path(routes, "airports", Some(("routes", "airports")))?;
        Ok(Self {
            routes: routes.to_path_buf(),
            airports,
        })
    }
}

/// Maps a trend level to its paper-style attribute (`NbDepart+` …).
fn level_label(
    r: &LineReader<BufReader<File>>,
    key: &str,
    level: &str,
) -> Result<Option<String>, IngestError> {
    match level.trim() {
        "+" | "-" | "=" => Ok(Some(format!("{key}{}", level.trim()))),
        "" | "null" => Ok(None),
        other => Err(r.parse_error(format!(
            "level '{other}' for {key} is not '+', '-', '=' or null"
        ))),
    }
}

impl super::AttributedGraphSource for UsFlightSource {
    fn name(&self) -> String {
        dataset_name("USFlight", &self.routes)
    }

    fn category(&self) -> &'static str {
        super::Format::UsFlight.category()
    }

    fn files(&self) -> Vec<PathBuf> {
        vec![self.routes.clone(), self.airports.clone()]
    }

    fn stream_into(&mut self, sink: &mut GraphAssembler) -> Result<(), IngestError> {
        let mut fields: Vec<String> = Vec::new();
        let mut line = String::new();

        // Airport table first: declares vertices and attributes.
        let mut r = LineReader::new(BufReader::new(File::open(&self.airports)?), &self.airports);
        let mut saw_header = false;
        while r.read_line(&mut line)? {
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if !saw_header {
                saw_header = true;
                let lower = line.to_ascii_lowercase();
                if !lower.starts_with("code,") {
                    return Err(r.parse_error(
                        "airport table must start with header 'code,state,nb_depart,nb_arrive,delay'",
                    ));
                }
                continue;
            }
            csv_fields(&line, &mut fields);
            let [code, state, nb_depart, nb_arrive, delay] = fields.as_slice() else {
                return Err(r.parse_error(format!(
                    "truncated airport row: {} fields, expected 5 (code,state,nb_depart,nb_arrive,delay)",
                    fields.len()
                )));
            };
            let code = code.trim();
            if code.is_empty() {
                return Err(r.parse_error("empty airport code"));
            }
            let Some(v) = sink.declare(code) else {
                return Err(IngestError::DuplicateVertex {
                    path: self.airports.clone(),
                    line: r.lineno(),
                    id: code.to_owned(),
                });
            };
            if !matches!(state.trim(), "" | "null") {
                sink.keyed_label(v, "state", state.trim());
            }
            for (key, level) in [
                ("NbDepart", nb_depart),
                ("NbArrive", nb_arrive),
                ("Delay", delay),
            ] {
                if let Some(label) = level_label(&r, key, level)? {
                    sink.label(v, &label);
                }
            }
        }

        // Route table: edges (airline column, if present, is ignored).
        let mut r = LineReader::new(BufReader::new(File::open(&self.routes)?), &self.routes);
        let mut saw_header = false;
        while r.read_line(&mut line)? {
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if !saw_header {
                saw_header = true;
                let lower = line.to_ascii_lowercase();
                if !lower.starts_with("src,dst") {
                    return Err(
                        r.parse_error("route table must start with header 'src,dst[,airline]'")
                    );
                }
                continue;
            }
            csv_fields(&line, &mut fields);
            let (Some(src), Some(dst)) = (fields.first(), fields.get(1)) else {
                return Err(r.parse_error("truncated route row (expected src,dst)"));
            };
            let (src, dst) = (src.trim(), dst.trim());
            if src.is_empty() || dst.is_empty() {
                return Err(r.parse_error("route row with empty endpoint code"));
            }
            let u = sink.vertex(src);
            let v = sink.vertex(dst);
            sink.edge(u, v);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::temp_dir;
    use super::super::{AttributedGraphSource as _, GraphAssembler};
    use super::*;
    use std::fs;

    fn run(
        routes: &str,
        airports: &str,
        case: &str,
    ) -> Result<cspm_graph::AttributedGraph, IngestError> {
        let dir = temp_dir(&format!("usflight-{case}"));
        let path = dir.join("flights.csv");
        fs::write(&path, routes).unwrap();
        fs::write(dir.join("flights.airports.csv"), airports).unwrap();
        let mut src = UsFlightSource::open(&path)?;
        let mut sink = GraphAssembler::new();
        src.stream_into(&mut sink)?;
        Ok(sink.finish())
    }

    const AIRPORTS: &str = "code,state,nb_depart,nb_arrive,delay\n\
                            JFK,NY,+,+,+\n\
                            LAX,CA,+,+,-\n\
                            BUF,NY,-,-,=\n";

    #[test]
    fn parses_routes_and_levels() {
        let g = run(
            "src,dst,airline\nJFK,LAX,AA\nLAX,JFK,DL\nJFK,BUF,B6\n",
            AIRPORTS,
            "ok",
        )
        .unwrap();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 2); // JFK-LAX collapses both directions
        let a = g.attrs();
        assert!(a.get("NbDepart+").is_some());
        assert!(a.get("Delay-").is_some());
        assert!(a.get("Delay=").is_some());
        assert!(a.get("state=NY").is_some());
    }

    #[test]
    fn self_loop_routes_are_skipped_not_fatal() {
        let g = run("src,dst\nJFK,JFK\nJFK,LAX\n", AIRPORTS, "loop").unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn unknown_level_is_a_parse_error() {
        let err = run(
            "src,dst\nJFK,LAX\n",
            "code,state,nb_depart,nb_arrive,delay\nJFK,NY,high,+,+\n",
            "badlevel",
        )
        .unwrap_err();
        match err {
            IngestError::Parse { line, message, .. } => {
                assert_eq!(line, 2);
                assert!(message.contains("NbDepart"));
            }
            other => panic!("expected Parse, got {other}"),
        }
    }

    #[test]
    fn truncated_airport_row_is_a_parse_error() {
        let err = run(
            "src,dst\nJFK,LAX\n",
            "code,state,nb_depart,nb_arrive,delay\nJFK,NY\n",
            "short",
        )
        .unwrap_err();
        assert!(matches!(err, IngestError::Parse { line: 2, .. }));
    }

    #[test]
    fn duplicate_airport_is_typed() {
        let err = run(
            "src,dst\nJFK,LAX\n",
            "code,state,nb_depart,nb_arrive,delay\nJFK,NY,+,+,+\nJFK,NY,-,-,-\n",
            "dup",
        )
        .unwrap_err();
        assert!(matches!(err, IngestError::DuplicateVertex { line: 3, .. }));
    }

    #[test]
    fn missing_headers_are_parse_errors() {
        let err = run("JFK,LAX\n", AIRPORTS, "noheader").unwrap_err();
        assert!(matches!(err, IngestError::Parse { line: 1, .. }));
        let err = run("src,dst\nJFK,LAX\n", "JFK,NY,+,+,+\n", "noairportheader").unwrap_err();
        assert!(matches!(err, IngestError::Parse { line: 1, .. }));
    }

    #[test]
    fn missing_airports_sidecar_is_typed() {
        let dir = temp_dir("usflight-nosidecar");
        let path = dir.join("alone.csv");
        fs::write(&path, "src,dst\n").unwrap();
        assert!(matches!(
            UsFlightSource::open(&path),
            Err(IngestError::MissingSidecar { .. })
        ));
    }
}
