//! Streaming ingestion of real attributed-graph dumps.
//!
//! The paper's experiments run on real datasets — Pokec, DBLP,
//! USFlight — while the rest of this crate generates synthetic
//! stand-ins. This module (behind the `real-data` feature) closes that
//! gap: each supported dump format has a streaming parser that feeds
//! records straight into [`cspm_graph::GraphBuilder`] through a
//! [`GraphAssembler`] sink — one pass, one reused line buffer, no
//! intermediate per-dataset maps — and the assembled graph is cached in
//! a versioned binary snapshot (`.csbin`) so repeat runs skip parsing
//! entirely. Formats and the snapshot layout are specified in
//! `docs/FORMATS.md`.
//!
//! # Example
//!
//! ```
//! use cspm_datasets::ingest::{self, Format, SnapshotPolicy};
//! # let dir = std::env::temp_dir().join("cspm-ingest-doctest");
//! # std::fs::create_dir_all(&dir).unwrap();
//! # let path = dir.join("tiny.txt");
//! # std::fs::write(&path, "1\t2\n2\t3\n").unwrap();
//! # std::fs::write(dir.join("tiny.profiles.txt"),
//! #     "1\t1\t55\t1\tbratislavsky kraj\t25\n2\t1\t40\t0\tkosicky kraj\t31\n").unwrap();
//! // pokec-style dump: tab-separated edges + a profile sidecar
//! let report = ingest::ingest(&path, None, SnapshotPolicy::Off).unwrap();
//! assert_eq!(report.format, Format::Pokec);
//! assert_eq!(report.dataset.graph.vertex_count(), 3);
//! ```

mod dblp;
mod error;
mod lines;
mod native;
mod pokec;
pub mod snapshot;
mod usflight;

pub use error::IngestError;
pub use snapshot::{CSBIN_MAGIC, CSBIN_VERSION};

use std::collections::HashMap;
use std::fmt;
use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::time::Instant;

use cspm_graph::{AttributedGraph, GraphBuilder, VertexId};

use crate::Dataset;

/// A supported real-dataset dump format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// SNAP-style Pokec: tab-separated edge list plus a tab-separated
    /// profile sidecar (`<stem>.profiles.<ext>`).
    Pokec,
    /// DBLP co-authorship CSV: one row per author with `;`-separated
    /// venue and co-author columns.
    Dblp,
    /// USFlight route CSV plus an airport attribute sidecar
    /// (`<stem>.airports.csv`).
    UsFlight,
    /// This repo's own plain-text `v`/`e` graph format.
    Native,
}

impl Format {
    /// Parses a CLI format name. `"auto"` maps to `None` (sniff).
    pub fn from_cli(name: &str) -> Result<Option<Format>, String> {
        match name {
            "pokec" => Ok(Some(Format::Pokec)),
            "dblp" => Ok(Some(Format::Dblp)),
            "usflight" => Ok(Some(Format::UsFlight)),
            "native" => Ok(Some(Format::Native)),
            "auto" => Ok(None),
            other => Err(format!(
                "unknown format '{other}' (expected pokec|dblp|usflight|native|auto)"
            )),
        }
    }

    /// Stable one-byte tag recorded in `.csbin` snapshots, so a cache
    /// built by one parser is never served to a run requesting another.
    pub fn tag(self) -> u8 {
        match self {
            Format::Pokec => 1,
            Format::Dblp => 2,
            Format::UsFlight => 3,
            Format::Native => 4,
        }
    }

    /// Inverse of [`Self::tag`].
    pub fn from_tag(tag: u8) -> Option<Format> {
        match tag {
            1 => Some(Format::Pokec),
            2 => Some(Format::Dblp),
            3 => Some(Format::UsFlight),
            4 => Some(Format::Native),
            _ => None,
        }
    }

    /// Table II category of datasets in this format.
    pub fn category(self) -> &'static str {
        match self {
            Format::Pokec => "Social",
            Format::Dblp => "Citation",
            Format::UsFlight => "Airport",
            Format::Native => "Graph",
        }
    }

    /// Detects the format from the first non-comment line of `path`:
    /// `v`/`e` records are native, a pair of tab-separated integers is a
    /// Pokec edge list, and CSV headers are told apart by their columns
    /// (`venues`+`coauthors` vs `src`+`dst`).
    pub fn sniff(path: &Path) -> Result<Format, IngestError> {
        let mut reader = BufReader::new(File::open(path)?);
        let mut line = Vec::new();
        loop {
            line.clear();
            if reader.read_until(b'\n', &mut line)? == 0 {
                break;
            }
            let text = String::from_utf8_lossy(&line);
            let text = text.trim();
            if text.is_empty() || text.starts_with('#') {
                continue;
            }
            if text.starts_with("v ") || text.starts_with("e ") {
                return Ok(Format::Native);
            }
            let mut tabs = text.split('\t');
            if let (Some(a), Some(b)) = (tabs.next(), tabs.next()) {
                if a.trim().parse::<u64>().is_ok() && b.trim().parse::<u64>().is_ok() {
                    return Ok(Format::Pokec);
                }
            }
            let header = text.to_ascii_lowercase();
            let has = |col: &str| header.split(',').any(|f| f.trim() == col);
            if has("venues") && has("coauthors") {
                return Ok(Format::Dblp);
            }
            if has("src") && has("dst") {
                return Ok(Format::UsFlight);
            }
            break;
        }
        Err(IngestError::UnknownFormat {
            path: path.to_path_buf(),
        })
    }
}

impl fmt::Display for Format {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Format::Pokec => "pokec",
            Format::Dblp => "dblp",
            Format::UsFlight => "usflight",
            Format::Native => "native",
        })
    }
}

/// Sink that dump parsers stream records into.
///
/// Real dumps use sparse external ids (Pokec user numbers, IATA codes,
/// author keys); the assembler remaps them to the dense [`VertexId`]s
/// the miner needs, forwards labels and edges straight into a
/// [`GraphBuilder`], and tallies the oddities real data contains
/// (self-loop rows are skipped, duplicate declarations are errors).
pub struct GraphAssembler {
    builder: GraphBuilder,
    ids: HashMap<Box<str>, VertexId>,
    declared: Vec<bool>,
    self_loops_skipped: usize,
    value_buf: String,
}

impl Default for GraphAssembler {
    fn default() -> Self {
        Self::new()
    }
}

impl GraphAssembler {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        Self {
            builder: GraphBuilder::new(),
            ids: HashMap::new(),
            declared: Vec::new(),
            self_loops_skipped: 0,
            value_buf: String::new(),
        }
    }

    /// Dense id for external id `ext`, creating the vertex on first use.
    pub fn vertex(&mut self, ext: &str) -> VertexId {
        if let Some(&v) = self.ids.get(ext) {
            return v;
        }
        let v = self.builder.add_vertex(std::iter::empty::<&str>());
        self.ids.insert(ext.into(), v);
        self.declared.push(false);
        v
    }

    /// Like [`Self::vertex`], but returns `None` if `ext` was already
    /// *declared* — used for the one record per entity (profile row,
    /// author row, airport row) each format carries; callers turn
    /// `None` into [`IngestError::DuplicateVertex`].
    pub fn declare(&mut self, ext: &str) -> Option<VertexId> {
        let v = self.vertex(ext);
        if std::mem::replace(&mut self.declared[v as usize], true) {
            return None;
        }
        Some(v)
    }

    /// Attaches attribute value `value` to `v`, normalising internal
    /// whitespace to `_` so values survive the plain-text graph format.
    pub fn label(&mut self, v: VertexId, value: &str) {
        self.value_buf.clear();
        for part in value.split_whitespace() {
            if !self.value_buf.is_empty() {
                self.value_buf.push('_');
            }
            self.value_buf.push_str(part);
        }
        if self.value_buf.is_empty() {
            return;
        }
        // value_buf can't alias builder state; ids are in-range by
        // construction.
        let buf = std::mem::take(&mut self.value_buf);
        self.builder
            .add_label(v, &buf)
            .expect("assembler ids are always in range");
        self.value_buf = buf;
    }

    /// Attaches a `key=value` attribute (`key=` prefixed normalisation
    /// of [`Self::label`]).
    pub fn keyed_label(&mut self, v: VertexId, key: &str, value: &str) {
        let mut composed = String::with_capacity(key.len() + 1 + value.len());
        composed.push_str(key);
        composed.push('=');
        composed.push_str(value);
        self.label(v, &composed);
    }

    /// Adds the undirected edge `{u, v}`; self-loops (present in some
    /// real dumps) are skipped and tallied, duplicates collapse.
    pub fn edge(&mut self, u: VertexId, v: VertexId) {
        if u == v {
            self.self_loops_skipped += 1;
            return;
        }
        self.builder
            .add_edge(u, v)
            .expect("assembler ids are always in range");
    }

    /// Number of vertices created so far.
    pub fn vertex_count(&self) -> usize {
        self.builder.vertex_count()
    }

    /// Self-loop records skipped so far.
    pub fn self_loops_skipped(&self) -> usize {
        self.self_loops_skipped
    }

    /// Finishes construction (no connectivity requirement: the miner
    /// accepts any graph, and real dumps are rarely one component).
    pub fn finish(self) -> AttributedGraph {
        self.builder.build_unchecked()
    }
}

/// A streaming producer of one attributed graph.
///
/// Implementations read their dump(s) line by line and push records
/// into the [`GraphAssembler`]; nothing dataset-sized is materialised
/// outside the builder itself.
pub trait AttributedGraphSource {
    /// Dataset display name (e.g. `"Pokec(real:pokec_small)"`).
    fn name(&self) -> String;
    /// Table II category column.
    fn category(&self) -> &'static str;
    /// Every file this source reads — the main dump and any sidecars.
    /// The `.csbin` fingerprint covers them all, so editing a sidecar
    /// invalidates the snapshot too.
    fn files(&self) -> Vec<PathBuf>;
    /// Streams every record into `sink`, consuming the underlying
    /// reader(s).
    fn stream_into(&mut self, sink: &mut GraphAssembler) -> Result<(), IngestError>;
}

/// Returns the format's source over `path`, resolving sidecar files.
pub fn source_for(
    path: &Path,
    format: Format,
) -> Result<Box<dyn AttributedGraphSource>, IngestError> {
    Ok(match format {
        Format::Pokec => Box::new(pokec::PokecSource::open(path)?),
        Format::Dblp => Box::new(dblp::DblpSource::open(path)?),
        Format::UsFlight => Box::new(usflight::UsFlightSource::open(path)?),
        Format::Native => Box::new(native::NativeSource::open(path)?),
    })
}

/// Whether ingestion may read/write the `.csbin` snapshot next to the
/// source dump.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SnapshotPolicy {
    /// Load a valid snapshot if present; otherwise parse and write one.
    #[default]
    ReadWrite,
    /// Always parse; never touch snapshot files (benchmarking parsers,
    /// read-only fixture directories).
    Off,
}

/// How the snapshot cache behaved during one [`ingest`] call.
#[derive(Debug)]
pub enum SnapshotOutcome {
    /// Snapshots were disabled by [`SnapshotPolicy::Off`].
    Disabled,
    /// A valid snapshot was loaded; the dump was not parsed.
    Loaded {
        /// The snapshot read.
        path: PathBuf,
    },
    /// The dump was parsed and a fresh snapshot written.
    /// `invalidated` carries the reason an existing snapshot was
    /// rejected (stale, wrong version, corrupt), if there was one.
    Written {
        /// The snapshot written.
        path: PathBuf,
        /// Why the previous snapshot was unusable, if one existed.
        invalidated: Option<String>,
    },
    /// The dump was parsed but the snapshot could not be written
    /// (e.g. a read-only directory). Not fatal: mining proceeds.
    WriteFailed {
        /// The snapshot path that could not be created.
        path: PathBuf,
        /// The write error.
        reason: String,
    },
}

/// Result of one [`ingest`] call.
#[derive(Debug)]
pub struct IngestReport {
    /// The assembled dataset, ready for the miner.
    pub dataset: Dataset,
    /// Format actually used (sniffed or requested).
    pub format: Format,
    /// Wall-clock seconds spent parsing + assembling (0 when the
    /// snapshot was loaded instead).
    pub parse_secs: f64,
    /// Wall-clock seconds spent loading the snapshot, when one was.
    pub snapshot_load_secs: f64,
    /// Self-loop records skipped during parsing.
    pub self_loops_skipped: usize,
    /// What the snapshot cache did.
    pub snapshot: SnapshotOutcome,
}

/// Ingests a real dataset dump: sniffs the format (unless given),
/// consults the `.csbin` snapshot cache per `snapshots`, and otherwise
/// streams the dump through its parser. See the module docs for an
/// example.
pub fn ingest(
    path: &Path,
    format: Option<Format>,
    snapshots: SnapshotPolicy,
) -> Result<IngestReport, IngestError> {
    let format = match format {
        Some(f) => f,
        None => Format::sniff(path)?,
    };
    let mut source = source_for(path, format)?;
    // Fingerprint covers the main dump AND sidecars; computed once,
    // used for both the load check and the write.
    let fingerprint = match snapshots {
        SnapshotPolicy::ReadWrite => Some(snapshot::source_fingerprint(&source.files())?),
        SnapshotPolicy::Off => None,
    };
    let mut invalidated = None;
    if let Some(fingerprint) = fingerprint {
        let snap = snapshot::snapshot_path(path);
        if snap.exists() {
            let t = Instant::now();
            match snapshot::load_snapshot(&snap, fingerprint) {
                Ok(loaded) if loaded.format_tag == format.tag() => {
                    return Ok(IngestReport {
                        dataset: Dataset {
                            name: leak_name(loaded.name),
                            category: leak_name(loaded.category),
                            graph: loaded.graph,
                        },
                        format,
                        parse_secs: 0.0,
                        snapshot_load_secs: t.elapsed().as_secs_f64(),
                        self_loops_skipped: 0,
                        snapshot: SnapshotOutcome::Loaded { path: snap },
                    });
                }
                // A snapshot built by a different parser must not be
                // served to a run that asked for this one.
                Ok(loaded) => {
                    let built_by = Format::from_tag(loaded.format_tag)
                        .map(|f| f.to_string())
                        .unwrap_or_else(|| format!("tag {}", loaded.format_tag));
                    invalidated = Some(format!(
                        "snapshot was built by the '{built_by}' parser, this run uses '{format}'"
                    ));
                }
                // Unusable snapshots (stale, old version, corrupt) fall
                // through to a fresh parse; real errors propagate.
                Err(e) if e.is_snapshot() => invalidated = Some(e.to_string()),
                Err(e) => return Err(e),
            }
        }
    }

    let name = source.name();
    let category = source.category();
    let t = Instant::now();
    let mut sink = GraphAssembler::new();
    source.stream_into(&mut sink)?;
    let self_loops_skipped = sink.self_loops_skipped();
    let graph = sink.finish();
    let parse_secs = t.elapsed().as_secs_f64();

    let snapshot = match fingerprint {
        None => SnapshotOutcome::Disabled,
        Some(fingerprint) => {
            let snap = snapshot::snapshot_path(path);
            match snapshot::write_snapshot(
                &snap,
                fingerprint,
                format.tag(),
                &name,
                category,
                &graph,
            ) {
                Ok(()) => SnapshotOutcome::Written {
                    path: snap,
                    invalidated,
                },
                Err(e) => SnapshotOutcome::WriteFailed {
                    path: snap,
                    reason: e.to_string(),
                },
            }
        }
    };
    Ok(IngestReport {
        dataset: Dataset {
            name: leak_name(name),
            category,
            graph,
        },
        format,
        parse_secs,
        snapshot_load_secs: 0.0,
        self_loops_skipped,
        snapshot,
    })
}

/// [`Dataset::name`] is `&'static str` (the generators use literals);
/// ingested names are dynamic, so they are leaked once per ingested
/// file — a few bytes over a process that ingests a handful of dumps.
fn leak_name(s: String) -> &'static str {
    Box::leak(s.into_boxed_str())
}

/// Display name `<Kind>(real:<file stem>)`.
fn dataset_name(kind: &str, path: &Path) -> String {
    let stem = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "input".to_owned());
    format!("{kind}(real:{stem})")
}

/// Resolves a sidecar path by inserting `tag` before the extension
/// (`pokec_small.txt` → `pokec_small.profiles.txt`), falling back to a
/// name substitution for the real dumps' naming convention
/// (`soc-pokec-relationships.txt` → `soc-pokec-profiles.txt`).
fn sidecar_path(
    main: &Path,
    tag: &str,
    substitute: Option<(&str, &str)>,
) -> Result<PathBuf, IngestError> {
    let stem = main.file_stem().unwrap_or_default().to_string_lossy();
    let ext = main.extension().unwrap_or_default().to_string_lossy();
    let tagged = if ext.is_empty() {
        main.with_file_name(format!("{stem}.{tag}"))
    } else {
        main.with_file_name(format!("{stem}.{tag}.{ext}"))
    };
    if tagged.exists() {
        return Ok(tagged);
    }
    if let Some((from, to)) = substitute {
        let name = main.file_name().unwrap_or_default().to_string_lossy();
        if name.contains(from) {
            let swapped = main.with_file_name(name.replace(from, to));
            if swapped.exists() {
                return Ok(swapped);
            }
        }
    }
    Err(IngestError::MissingSidecar {
        main: main.to_path_buf(),
        expected: tagged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    pub(crate) fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("cspm-ingest-tests").join(name);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn assembler_remaps_sparse_ids_and_skips_self_loops() {
        let mut a = GraphAssembler::new();
        let u = a.vertex("1000");
        let v = a.vertex("7");
        assert_eq!(a.vertex("1000"), u);
        a.edge(u, v);
        a.edge(u, u);
        a.keyed_label(u, "region", "zilinsky kraj, zilina");
        let loops = a.self_loops_skipped();
        let g = a.finish();
        assert_eq!(loops, 1);
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert!(g.attrs().get("region=zilinsky_kraj,_zilina").is_some());
    }

    #[test]
    fn declare_rejects_duplicates() {
        let mut a = GraphAssembler::new();
        assert!(a.declare("x").is_some());
        assert!(a.declare("y").is_some());
        assert!(a.declare("x").is_none());
    }

    #[test]
    fn format_cli_names_roundtrip() {
        for f in [
            Format::Pokec,
            Format::Dblp,
            Format::UsFlight,
            Format::Native,
        ] {
            assert_eq!(Format::from_cli(&f.to_string()).unwrap(), Some(f));
        }
        assert_eq!(Format::from_cli("auto").unwrap(), None);
        assert!(Format::from_cli("nope").is_err());
    }

    #[test]
    fn sniff_distinguishes_the_formats() {
        let dir = temp_dir("sniff");
        let cases: &[(&str, &str, Format)] = &[
            ("edges.txt", "# snap\n12\t34\n", Format::Pokec),
            (
                "authors.csv",
                "id,name,venues,coauthors\n1,A,ICDE,2\n",
                Format::Dblp,
            ),
            (
                "routes.csv",
                "src,dst,airline\nJFK,LAX,AA\n",
                Format::UsFlight,
            ),
            ("plain.graph", "# c\nv 0 a\ne 0 1\n", Format::Native),
        ];
        for (file, text, want) in cases {
            let p = dir.join(file);
            fs::write(&p, text).unwrap();
            assert_eq!(Format::sniff(&p).unwrap(), *want, "{file}");
        }
        let p = dir.join("mystery.bin");
        fs::write(&p, "???\n").unwrap();
        assert!(matches!(
            Format::sniff(&p),
            Err(IngestError::UnknownFormat { .. })
        ));
    }

    /// Writes the pokec fixture pair into a fresh scratch dir.
    fn pokec_pair(case: &str) -> PathBuf {
        let dir = temp_dir(case);
        fs::remove_dir_all(&dir).ok();
        fs::create_dir_all(&dir).unwrap();
        let edges = dir.join("p.txt");
        fs::write(&edges, "1\t2\n2\t3\n").unwrap();
        fs::write(
            dir.join("p.profiles.txt"),
            "1\t1\t0\t1\tkraj a\t20\n2\t1\t0\t0\tkraj b\t30\n3\t1\t0\t1\tkraj a\t40\n",
        )
        .unwrap();
        edges
    }

    #[test]
    fn editing_a_sidecar_invalidates_the_snapshot() {
        let edges = pokec_pair("sidecar-fingerprint");
        let r = ingest(&edges, None, SnapshotPolicy::ReadWrite).unwrap();
        assert!(matches!(r.snapshot, SnapshotOutcome::Written { .. }));
        let r = ingest(&edges, None, SnapshotPolicy::ReadWrite).unwrap();
        assert!(matches!(r.snapshot, SnapshotOutcome::Loaded { .. }));

        // Rewriting the PROFILES file (the main dump is untouched) must
        // cause a re-parse, not a stale cache hit.
        std::thread::sleep(std::time::Duration::from_millis(5));
        fs::write(
            edges.with_file_name("p.profiles.txt"),
            "1\t1\t0\t1\tkraj c\t20\n2\t1\t0\t0\tkraj b\t30\n3\t1\t0\t1\tkraj c\t40\n",
        )
        .unwrap();
        let r = ingest(&edges, None, SnapshotPolicy::ReadWrite).unwrap();
        match &r.snapshot {
            SnapshotOutcome::Written { invalidated, .. } => {
                assert!(invalidated.as_deref().unwrap_or("").contains("stale"))
            }
            other => panic!("expected re-parse after sidecar edit, got {other:?}"),
        }
        assert!(r.dataset.graph.attrs().get("region=kraj_c").is_some());
    }

    #[test]
    fn snapshot_built_by_another_format_is_not_served() {
        let edges = pokec_pair("format-tag");
        ingest(&edges, Some(Format::Pokec), SnapshotPolicy::ReadWrite).unwrap();
        // Same file, now explicitly requested as native: the pokec
        // snapshot must be rejected (tag mismatch) and the native parse
        // then fails on the pokec records — it must NOT silently return
        // the cached pokec graph.
        let err = ingest(&edges, Some(Format::Native), SnapshotPolicy::ReadWrite).unwrap_err();
        assert!(matches!(err, IngestError::Parse { .. }), "{err}");
    }

    #[test]
    fn sidecar_resolution_prefers_tagged_then_substitutes() {
        let dir = temp_dir("sidecar");
        // The scratch dir persists across test runs; start clean so the
        // sidecar written below doesn't pre-exist.
        fs::remove_dir_all(&dir).ok();
        fs::create_dir_all(&dir).unwrap();
        let main = dir.join("soc-pokec-relationships.txt");
        fs::write(&main, "1\t2\n").unwrap();
        // Neither sidecar exists yet: typed error naming the expectation.
        match sidecar_path(&main, "profiles", Some(("relationships", "profiles"))) {
            Err(IngestError::MissingSidecar { expected, .. }) => {
                assert!(expected.to_string_lossy().contains("profiles"))
            }
            other => panic!("expected MissingSidecar, got {other:?}"),
        }
        let swapped = dir.join("soc-pokec-profiles.txt");
        fs::write(&swapped, "1\t1\t0\tnull\tnull\tnull\n").unwrap();
        assert_eq!(
            sidecar_path(&main, "profiles", Some(("relationships", "profiles"))).unwrap(),
            swapped
        );
    }
}
