//! Native plain-text graphs (`v` / `e` records) through the streaming
//! pipeline.
//!
//! [`cspm_graph::read_graph`] already parses this format; this source
//! exists so `--input file.graph --format auto` works uniformly (one
//! code path, one snapshot cache). One semantic difference to
//! `read_graph`: ids pass through the assembler's remap, so vertices
//! that appear in *no* record (gaps in a sparse id range) are not
//! materialised. Generated and round-tripped files have no gaps.

use std::fs::File;
use std::io::BufReader;
use std::path::{Path, PathBuf};

use super::error::IngestError;
use super::lines::LineReader;
use super::{dataset_name, GraphAssembler};

/// Streaming source over a native `v`/`e` graph file.
pub struct NativeSource {
    path: PathBuf,
}

impl NativeSource {
    /// Opens the file (existence is checked at stream time).
    pub fn open(path: &Path) -> Result<Self, IngestError> {
        Ok(Self {
            path: path.to_path_buf(),
        })
    }
}

impl super::AttributedGraphSource for NativeSource {
    fn name(&self) -> String {
        dataset_name("Graph", &self.path)
    }

    fn category(&self) -> &'static str {
        super::Format::Native.category()
    }

    fn files(&self) -> Vec<PathBuf> {
        vec![self.path.clone()]
    }

    fn stream_into(&mut self, sink: &mut GraphAssembler) -> Result<(), IngestError> {
        let mut r = LineReader::new(BufReader::new(File::open(&self.path)?), &self.path);
        let mut line = String::new();
        while r.read_line(&mut line)? {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            match parts.next().unwrap() {
                "v" => {
                    let Some(id) = parts.next() else {
                        return Err(r.parse_error("v record without a vertex id"));
                    };
                    if id.parse::<u64>().is_err() {
                        return Err(r.parse_error(format!("vertex id '{id}' is not an integer")));
                    }
                    let v = sink.vertex(id);
                    for value in parts {
                        sink.label(v, value);
                    }
                }
                "e" => {
                    let (Some(a), Some(b)) = (parts.next(), parts.next()) else {
                        return Err(r.parse_error("e record needs two vertex ids"));
                    };
                    for id in [a, b] {
                        if id.parse::<u64>().is_err() {
                            return Err(
                                r.parse_error(format!("vertex id '{id}' is not an integer"))
                            );
                        }
                    }
                    let u = sink.vertex(a);
                    let v = sink.vertex(b);
                    sink.edge(u, v);
                }
                other => {
                    return Err(r.parse_error(format!("unknown record tag '{other}'")));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::temp_dir;
    use super::super::{AttributedGraphSource as _, GraphAssembler};
    use super::*;
    use std::fs;

    fn run(text: &str, case: &str) -> Result<cspm_graph::AttributedGraph, IngestError> {
        let dir = temp_dir(&format!("native-{case}"));
        let path = dir.join("g.graph");
        fs::write(&path, text).unwrap();
        let mut src = NativeSource::open(&path)?;
        let mut sink = GraphAssembler::new();
        src.stream_into(&mut sink)?;
        Ok(sink.finish())
    }

    #[test]
    fn matches_read_graph_on_generated_files() {
        let d = crate::dblp_like(crate::Scale::Tiny, 8);
        let dir = temp_dir("native-roundtrip");
        let path = dir.join("dblp.graph");
        crate::save_dataset(&d, &path).unwrap();
        let mut src = NativeSource::open(&path).unwrap();
        let mut sink = GraphAssembler::new();
        src.stream_into(&mut sink).unwrap();
        let g = sink.finish();
        assert_eq!(g.vertex_count(), d.graph.vertex_count());
        assert_eq!(g.edge_count(), d.graph.edge_count());
        assert_eq!(g.attr_count(), d.graph.attr_count());
    }

    #[test]
    fn bad_records_are_parse_errors() {
        assert!(matches!(
            run("v 0 a\nz 1 2\n", "badtag"),
            Err(IngestError::Parse { line: 2, .. })
        ));
        assert!(matches!(
            run("e 0\n", "shortedge"),
            Err(IngestError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            run("v x a\n", "badid"),
            Err(IngestError::Parse { line: 1, .. })
        ));
    }
}
