//! DBLP co-authorship CSV: one row per author.
//!
//! The interchange cut of a DBLP export (see `docs/FORMATS.md` §2): a
//! header row naming at least `id`, `venues` and `coauthors` columns
//! (order free, extra columns ignored), then one row per author whose
//! `venues` field lists the venues they published at (`;`-separated —
//! these become the vertex's attribute values, as in the paper's DBLP
//! dataset) and whose `coauthors` field lists co-author ids
//! (`;`-separated — these become undirected edges). Names may be
//! double-quoted to protect embedded commas.

use std::fs::File;
use std::io::BufReader;
use std::path::{Path, PathBuf};

use super::error::IngestError;
use super::lines::{csv_fields, LineReader};
use super::{dataset_name, GraphAssembler};

/// Streaming source over a DBLP co-authorship CSV.
pub struct DblpSource {
    path: PathBuf,
}

impl DblpSource {
    /// Opens the CSV (existence is checked at stream time).
    pub fn open(path: &Path) -> Result<Self, IngestError> {
        Ok(Self {
            path: path.to_path_buf(),
        })
    }
}

impl super::AttributedGraphSource for DblpSource {
    fn name(&self) -> String {
        dataset_name("DBLP", &self.path)
    }

    fn category(&self) -> &'static str {
        super::Format::Dblp.category()
    }

    fn files(&self) -> Vec<PathBuf> {
        vec![self.path.clone()]
    }

    fn stream_into(&mut self, sink: &mut GraphAssembler) -> Result<(), IngestError> {
        let mut r = LineReader::new(BufReader::new(File::open(&self.path)?), &self.path);
        let mut fields: Vec<String> = Vec::new();
        let mut line = String::new();

        // Header: locate the columns we need.
        loop {
            if !r.read_line(&mut line)? {
                return Err(r.parse_error("empty file (expected a CSV header)"));
            }
            if !(line.is_empty() || line.starts_with('#')) {
                break;
            }
        }
        csv_fields(&line, &mut fields);
        let col = |name: &str| {
            fields
                .iter()
                .position(|f| f.trim().eq_ignore_ascii_case(name))
        };
        let (Some(id_col), Some(venues_col), Some(coauthors_col)) =
            (col("id"), col("venues"), col("coauthors"))
        else {
            return Err(r.parse_error("header must name 'id', 'venues' and 'coauthors' columns"));
        };
        let needed = id_col.max(venues_col).max(coauthors_col) + 1;

        while r.read_line(&mut line)? {
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            csv_fields(&line, &mut fields);
            if fields.len() < needed {
                return Err(r.parse_error(format!(
                    "truncated row: {} fields, header needs {needed}",
                    fields.len()
                )));
            }
            let id = fields[id_col].trim();
            if id.is_empty() {
                return Err(r.parse_error("empty author id"));
            }
            let Some(v) = sink.declare(id) else {
                return Err(IngestError::DuplicateVertex {
                    path: self.path.clone(),
                    line: r.lineno(),
                    id: id.to_owned(),
                });
            };
            for venue in fields[venues_col].split(';') {
                sink.label(v, venue.trim());
            }
            for co in fields[coauthors_col].split(';') {
                let co = co.trim();
                if co.is_empty() {
                    continue;
                }
                let u = sink.vertex(co);
                sink.edge(v, u);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::temp_dir;
    use super::super::{AttributedGraphSource as _, GraphAssembler};
    use super::*;
    use std::fs;

    fn run(text: &str, case: &str) -> Result<cspm_graph::AttributedGraph, IngestError> {
        let dir = temp_dir(&format!("dblp-{case}"));
        let path = dir.join("dblp.csv");
        fs::write(&path, text).unwrap();
        let mut src = DblpSource::open(&path)?;
        let mut sink = GraphAssembler::new();
        src.stream_into(&mut sink)?;
        Ok(sink.finish())
    }

    #[test]
    fn parses_rows_with_quoted_names() {
        let g = run(
            "id,name,venues,coauthors\n\
             1,\"Doe, Jane\",ICDE;VLDB,2;3\n\
             2,Smith,ICDE,1\n\
             3,Wu,KDD;ICDM,1\n",
            "ok",
        )
        .unwrap();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 2); // 1-2 and 1-3 (2;3 from row 1, symmetric dupes collapse)
        assert!(g.attrs().get("ICDE").is_some());
        assert!(g.attrs().get("ICDM").is_some());
        assert_eq!(g.labels(0).len(), 2);
    }

    #[test]
    fn header_columns_may_be_reordered() {
        let g = run("coauthors,id,venues\n2,1,SIGMOD\n1,2,SIGMOD\n", "reorder").unwrap();
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn missing_header_columns_is_a_parse_error() {
        let err = run("id,name\n1,A\n", "badheader").unwrap_err();
        match err {
            IngestError::Parse { line, message, .. } => {
                assert_eq!(line, 1);
                assert!(message.contains("coauthors"));
            }
            other => panic!("expected Parse, got {other}"),
        }
    }

    #[test]
    fn truncated_row_is_a_parse_error() {
        let err = run("id,name,venues,coauthors\n1,A\n", "short").unwrap_err();
        match err {
            IngestError::Parse { line, message, .. } => {
                assert_eq!(line, 2);
                assert!(message.contains("truncated row"));
            }
            other => panic!("expected Parse, got {other}"),
        }
    }

    #[test]
    fn duplicate_author_is_typed() {
        let err = run("id,name,venues,coauthors\n1,A,ICDE,\n1,B,VLDB,\n", "dup").unwrap_err();
        assert!(matches!(err, IngestError::DuplicateVertex { line: 3, .. }));
    }

    #[test]
    fn empty_file_is_a_parse_error() {
        assert!(matches!(run("", "empty"), Err(IngestError::Parse { .. })));
    }

    #[test]
    fn name_uses_file_stem() {
        let dir = temp_dir("dblp-name");
        let path = dir.join("dblp_small.csv");
        fs::write(&path, "id,venues,coauthors\n").unwrap();
        assert_eq!(
            DblpSource::open(&path).unwrap().name(),
            "DBLP(real:dblp_small)"
        );
    }
}
