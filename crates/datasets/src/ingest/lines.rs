//! Allocation-free line reading shared by all dump parsers.
//!
//! `BufRead::lines()` allocates a fresh `String` per line; over a 30M-
//! edge Pokec dump that is 30M allocations for data we look at once.
//! [`LineReader`] instead reuses one internal byte buffer and one
//! caller-provided `String`, and validates UTF-8 per line so a single
//! bad byte reports its exact position instead of aborting the whole
//! read.

use std::io::BufRead;
use std::path::{Path, PathBuf};

use super::error::IngestError;

/// Reusable line reader over any [`BufRead`]; tracks 1-based line
/// numbers and strips `\n` / `\r\n` terminators.
pub struct LineReader<R> {
    inner: R,
    path: PathBuf,
    buf: Vec<u8>,
    lineno: usize,
}

impl<R: BufRead> LineReader<R> {
    /// Wraps `inner`; `path` is used in error positions only.
    pub fn new(inner: R, path: &Path) -> Self {
        Self {
            inner,
            path: path.to_path_buf(),
            buf: Vec::with_capacity(256),
            lineno: 0,
        }
    }

    /// 1-based number of the line most recently returned.
    pub fn lineno(&self) -> usize {
        self.lineno
    }

    /// Reads the next line into `out` (reused across calls, so neither
    /// buffer reallocates in steady state); returns `false` at end of
    /// input. Invalid UTF-8 yields [`IngestError::Utf8`] with the
    /// offending line number.
    pub fn read_line(&mut self, out: &mut String) -> Result<bool, IngestError> {
        self.buf.clear();
        let n = self.inner.read_until(b'\n', &mut self.buf)?;
        if n == 0 {
            return Ok(false);
        }
        self.lineno += 1;
        while matches!(self.buf.last(), Some(b'\n' | b'\r')) {
            self.buf.pop();
        }
        match std::str::from_utf8(&self.buf) {
            Ok(s) => {
                out.clear();
                out.push_str(s);
                Ok(true)
            }
            Err(_) => Err(IngestError::Utf8 {
                path: self.path.clone(),
                line: self.lineno,
            }),
        }
    }

    /// Builds a [`IngestError::Parse`] at the current line.
    pub fn parse_error(&self, message: impl Into<String>) -> IngestError {
        IngestError::Parse {
            path: self.path.clone(),
            line: self.lineno,
            message: message.into(),
        }
    }
}

/// Splits one CSV record, honouring double-quoted fields (quotes may
/// contain commas; `""` is an escaped quote). Minimal by design: no
/// multi-line fields, which none of the supported dumps use. `out`'s
/// `String`s are reused across rows — steady-state parsing of a
/// fixed-width CSV allocates nothing per line.
pub fn csv_fields(line: &str, out: &mut Vec<String>) {
    fn open_field(out: &mut Vec<String>, used: &mut usize) {
        if *used == out.len() {
            out.push(String::new());
        }
        out[*used].clear();
        *used += 1;
    }
    let mut used = 0;
    open_field(out, &mut used);
    let bytes = line.as_bytes();
    let mut i = 0;
    let mut in_quotes = false;
    while i < bytes.len() {
        let c = bytes[i];
        match (in_quotes, c) {
            (false, b'"') => in_quotes = true,
            (true, b'"') => {
                if bytes.get(i + 1) == Some(&b'"') {
                    out[used - 1].push('"');
                    i += 1;
                } else {
                    in_quotes = false;
                }
            }
            (false, b',') => open_field(out, &mut used),
            _ => {
                // Multi-byte chars: push the whole char, skip its tail.
                let ch = line[i..].chars().next().unwrap();
                out[used - 1].push(ch);
                i += ch.len_utf8() - 1;
            }
        }
        i += 1;
    }
    out.truncate(used);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_all(text: &[u8]) -> Result<Vec<String>, IngestError> {
        let mut r = LineReader::new(text, Path::new("test.txt"));
        let mut out = Vec::new();
        let mut line = String::new();
        while r.read_line(&mut line)? {
            out.push(line.clone());
        }
        Ok(out)
    }

    #[test]
    fn strips_terminators_and_counts_lines() {
        let lines = read_all(b"a\r\nb\nc").unwrap();
        assert_eq!(lines, ["a", "b", "c"]);
    }

    #[test]
    fn invalid_utf8_reports_line() {
        let err = read_all(b"ok\n\xff\xfe\n").unwrap_err();
        match err {
            IngestError::Utf8 { line, .. } => assert_eq!(line, 2),
            other => panic!("expected Utf8, got {other}"),
        }
    }

    #[test]
    fn csv_quoting() {
        let mut f = Vec::new();
        csv_fields(r#"1,"Doe, Jane",a;b"#, &mut f);
        assert_eq!(f, ["1", "Doe, Jane", "a;b"]);
        csv_fields(r#""say ""hi""",x"#, &mut f);
        assert_eq!(f, [r#"say "hi""#, "x"]);
        csv_fields("", &mut f);
        assert_eq!(f, [""]);
        csv_fields("a,,b", &mut f);
        assert_eq!(f, ["a", "", "b"]);
    }
}
