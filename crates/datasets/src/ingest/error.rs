//! Typed errors for the real-dataset ingestion pipeline.
//!
//! Every malformed input — truncated lines, non-UTF-8 bytes, duplicate
//! vertex declarations, stale or corrupt snapshots — maps to a distinct
//! variant so callers can recover selectively (the CLI re-parses on any
//! `Snapshot*` variant but aborts on parse errors, for example). The
//! parsers never panic on bad input.

use std::fmt;
use std::io;
use std::path::PathBuf;

use cspm_graph::GraphError;

use super::snapshot::CSBIN_VERSION;

/// Errors raised while ingesting a real dataset dump or its snapshot.
#[derive(Debug)]
pub enum IngestError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// A line is not valid UTF-8 (1-based line number).
    Utf8 { path: PathBuf, line: usize },
    /// A malformed record: truncated line, bad id, bad number, …
    /// (1-based line number).
    Parse {
        path: PathBuf,
        line: usize,
        message: String,
    },
    /// A vertex (user / author / airport) was declared twice.
    DuplicateVertex {
        path: PathBuf,
        line: usize,
        id: String,
    },
    /// The format needs a companion file that does not exist
    /// (e.g. Pokec profiles next to the relationship dump).
    MissingSidecar { main: PathBuf, expected: PathBuf },
    /// The input matches none of the known formats.
    UnknownFormat { path: PathBuf },
    /// A `.csbin` file does not start with the `CSBN` magic.
    SnapshotMagic { path: PathBuf },
    /// A `.csbin` file was written by an incompatible layout version.
    SnapshotVersion { path: PathBuf, found: u16 },
    /// A `.csbin` file no longer matches its source dump (the source
    /// was edited or replaced since the snapshot was written).
    SnapshotStale { path: PathBuf },
    /// A `.csbin` file ends mid-record or carries impossible counts.
    SnapshotCorrupt {
        path: PathBuf,
        message: &'static str,
    },
    /// The assembled graph violates an input constraint.
    Graph(GraphError),
}

impl IngestError {
    /// Whether this error came from the snapshot cache rather than the
    /// source dump — snapshot failures are recoverable by re-parsing.
    pub fn is_snapshot(&self) -> bool {
        matches!(
            self,
            IngestError::SnapshotMagic { .. }
                | IngestError::SnapshotVersion { .. }
                | IngestError::SnapshotStale { .. }
                | IngestError::SnapshotCorrupt { .. }
        )
    }
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Io(e) => write!(f, "i/o error: {e}"),
            IngestError::Utf8 { path, line } => {
                write!(f, "{}:{line}: line is not valid UTF-8", path.display())
            }
            IngestError::Parse {
                path,
                line,
                message,
            } => write!(f, "{}:{line}: {message}", path.display()),
            IngestError::DuplicateVertex { path, line, id } => {
                write!(f, "{}:{line}: duplicate vertex id '{id}'", path.display())
            }
            IngestError::MissingSidecar { main, expected } => write!(
                f,
                "{} needs its companion file {} (not found)",
                main.display(),
                expected.display()
            ),
            IngestError::UnknownFormat { path } => write!(
                f,
                "{}: cannot auto-detect format (expected pokec, dblp, usflight or native)",
                path.display()
            ),
            IngestError::SnapshotMagic { path } => {
                write!(f, "{}: not a .csbin snapshot (bad magic)", path.display())
            }
            IngestError::SnapshotVersion { path, found } => write!(
                f,
                "{}: snapshot layout version {found} (this build reads version {CSBIN_VERSION})",
                path.display()
            ),
            IngestError::SnapshotStale { path } => write!(
                f,
                "{}: snapshot is stale (source dump changed since it was written)",
                path.display()
            ),
            IngestError::SnapshotCorrupt { path, message } => {
                write!(f, "{}: corrupt snapshot: {message}", path.display())
            }
            IngestError::Graph(e) => write!(f, "graph construction failed: {e}"),
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Io(e) => Some(e),
            IngestError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for IngestError {
    fn from(e: io::Error) -> Self {
        IngestError::Io(e)
    }
}

impl From<GraphError> for IngestError {
    fn from(e: GraphError) -> Self {
        IngestError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_positions() {
        let e = IngestError::Parse {
            path: "x.csv".into(),
            line: 7,
            message: "truncated row".into(),
        };
        assert!(e.to_string().contains("x.csv:7"));
        let e = IngestError::DuplicateVertex {
            path: "p.txt".into(),
            line: 3,
            id: "42".into(),
        };
        assert!(e.to_string().contains("duplicate vertex id '42'"));
    }

    #[test]
    fn snapshot_errors_are_recoverable() {
        assert!(IngestError::SnapshotStale { path: "a".into() }.is_snapshot());
        assert!(IngestError::SnapshotVersion {
            path: "a".into(),
            found: 99
        }
        .is_snapshot());
        assert!(!IngestError::UnknownFormat { path: "a".into() }.is_snapshot());
    }
}
