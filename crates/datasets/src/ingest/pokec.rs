//! SNAP-style Pokec: relationship edge list + profile sidecar.
//!
//! The public Pokec dump ships as two tab-separated files
//! (`soc-pokec-relationships.txt`, `soc-pokec-profiles.txt`). The
//! profile schema here is the 6-column cut used by our fixtures —
//! `user_id, public, completion_percentage, gender, region, age` — the
//! leading columns of the real 59-column table; trailing extra columns
//! are ignored, so the real dump parses unchanged. `null` marks an
//! absent value, as in the dump. See `docs/FORMATS.md` §1.

use std::fs::File;
use std::io::BufReader;
use std::path::{Path, PathBuf};

use super::error::IngestError;
use super::lines::LineReader;
use super::{dataset_name, sidecar_path, GraphAssembler};

/// Streaming source over a Pokec relationship dump + profile sidecar.
pub struct PokecSource {
    edges: PathBuf,
    profiles: PathBuf,
}

impl PokecSource {
    /// Opens `edges` and resolves its profile sidecar
    /// (`<stem>.profiles.<ext>`, or the real dump's
    /// `…relationships…` → `…profiles…` naming).
    pub fn open(edges: &Path) -> Result<Self, IngestError> {
        let profiles = sidecar_path(edges, "profiles", Some(("relationships", "profiles")))?;
        Ok(Self {
            edges: edges.to_path_buf(),
            profiles,
        })
    }
}

impl super::AttributedGraphSource for PokecSource {
    fn name(&self) -> String {
        dataset_name("Pokec", &self.edges)
    }

    fn category(&self) -> &'static str {
        super::Format::Pokec.category()
    }

    fn files(&self) -> Vec<PathBuf> {
        vec![self.edges.clone(), self.profiles.clone()]
    }

    fn stream_into(&mut self, sink: &mut GraphAssembler) -> Result<(), IngestError> {
        let mut line = String::new();
        // Profiles first: they declare users and their attributes.
        let mut r = LineReader::new(BufReader::new(File::open(&self.profiles)?), &self.profiles);
        while r.read_line(&mut line)? {
            let line = line.as_str();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut cols = line.split('\t');
            let user = cols.next().unwrap_or("");
            let _public = cols.next();
            let _completion = cols.next();
            let gender = cols.next();
            let region = cols.next();
            let age = cols.next();
            let (Some(gender), Some(region), Some(age)) = (gender, region, age) else {
                return Err(r.parse_error(
                    "truncated profile row (expected ≥ 6 tab-separated columns: \
                     user_id, public, completion_percentage, gender, region, age)",
                ));
            };
            if user.parse::<u64>().is_err() {
                return Err(r.parse_error(format!("user id '{user}' is not an integer")));
            }
            let Some(v) = sink.declare(user) else {
                return Err(IngestError::DuplicateVertex {
                    path: self.profiles.clone(),
                    line: r.lineno(),
                    id: user.to_owned(),
                });
            };
            match gender {
                "1" => sink.keyed_label(v, "gender", "male"),
                "0" => sink.keyed_label(v, "gender", "female"),
                "null" | "" => {}
                other => return Err(r.parse_error(format!("gender '{other}' is not 0, 1 or null"))),
            }
            if !matches!(region, "null" | "") {
                sink.keyed_label(v, "region", region);
            }
            match age {
                "null" | "" | "0" => {} // 0 = unset in the dump
                other => {
                    let years: u32 = other
                        .parse()
                        .map_err(|_| r.parse_error(format!("age '{other}' is not an integer")))?;
                    // Decade buckets: 7 → "0s", 25 → "20s".
                    sink.keyed_label(v, "age", &format!("{}s", (years / 10) * 10));
                }
            }
        }

        let mut r = LineReader::new(BufReader::new(File::open(&self.edges)?), &self.edges);
        while r.read_line(&mut line)? {
            let line = line.as_str();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut cols = line.split('\t');
            let (Some(a), Some(b)) = (cols.next(), cols.next()) else {
                return Err(
                    r.parse_error("truncated edge row (expected two tab-separated user ids)")
                );
            };
            for id in [a, b] {
                if id.trim().parse::<u64>().is_err() {
                    return Err(r.parse_error(format!("user id '{id}' is not an integer")));
                }
            }
            // Users may appear in edges without a profile row (deleted
            // accounts in the real dump): they become label-less
            // vertices.
            let u = sink.vertex(a.trim());
            let v = sink.vertex(b.trim());
            sink.edge(u, v);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::temp_dir;
    use super::super::{AttributedGraphSource as _, GraphAssembler};
    use super::*;
    use std::fs;

    fn write_pair(dir: &Path, edges: &str, profiles: &str) -> PathBuf {
        let e = dir.join("pokec.txt");
        fs::write(&e, edges).unwrap();
        fs::write(dir.join("pokec.profiles.txt"), profiles).unwrap();
        e
    }

    fn run(
        edges: &str,
        profiles: &str,
        case: &str,
    ) -> Result<cspm_graph::AttributedGraph, IngestError> {
        let dir = temp_dir(&format!("pokec-{case}"));
        let path = write_pair(&dir, edges, profiles);
        let mut src = PokecSource::open(&path)?;
        let mut sink = GraphAssembler::new();
        src.stream_into(&mut sink)?;
        Ok(sink.finish())
    }

    #[test]
    fn parses_profiles_and_edges() {
        let g = run(
            "# comment\n1\t2\n2\t3\n3\t1\n",
            "1\t1\t80\t1\tzilinsky kraj, zilina\t25\n\
             2\t0\t10\t0\tbratislavsky kraj\t31\n\
             3\t1\t55\tnull\tnull\t0\n",
            "ok",
        )
        .unwrap();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 3);
        let a = g.attrs();
        assert!(a.get("gender=male").is_some());
        assert!(a.get("region=zilinsky_kraj,_zilina").is_some());
        assert!(a.get("age=20s").is_some());
        assert!(a.get("age=30s").is_some());
        // Vertex 3 declared everything null: no labels.
        assert_eq!(g.labels(2).len(), 0);
    }

    #[test]
    fn under_ten_ages_bucket_cleanly() {
        let g = run(
            "1\t2\n",
            "1\t1\t0\t1\tx\t7\n2\t1\t0\t0\ty\t103\n",
            "age-edges",
        )
        .unwrap();
        assert!(g.attrs().get("age=0s").is_some(), "age 7 must bucket to 0s");
        assert!(g.attrs().get("age=100s").is_some());
        assert!(g.attrs().get("age=00s").is_none());
    }

    #[test]
    fn edge_only_users_exist_without_labels() {
        let g = run("1\t9\n", "1\t1\t0\t1\tnull\t20\n", "edge-only").unwrap();
        assert_eq!(g.vertex_count(), 2);
        assert!(g.labels(1).is_empty());
    }

    #[test]
    fn truncated_profile_is_a_parse_error() {
        let err = run("1\t2\n", "1\t1\t80\n", "truncated").unwrap_err();
        match err {
            IngestError::Parse { line, message, .. } => {
                assert_eq!(line, 1);
                assert!(message.contains("truncated profile row"));
            }
            other => panic!("expected Parse, got {other}"),
        }
    }

    #[test]
    fn truncated_edge_is_a_parse_error() {
        let err = run("1\n", "1\t1\t0\tnull\tnull\tnull\n", "short-edge").unwrap_err();
        assert!(matches!(err, IngestError::Parse { line: 1, .. }));
    }

    #[test]
    fn duplicate_user_is_typed() {
        let err = run(
            "1\t2\n",
            "1\t1\t0\t1\tx\t20\n2\t1\t0\t0\ty\t30\n1\t1\t0\t1\tz\t40\n",
            "dup",
        )
        .unwrap_err();
        match err {
            IngestError::DuplicateVertex { line, id, .. } => {
                assert_eq!(line, 3);
                assert_eq!(id, "1");
            }
            other => panic!("expected DuplicateVertex, got {other}"),
        }
    }

    #[test]
    fn non_utf8_profile_is_typed() {
        let dir = temp_dir("pokec-utf8");
        let path = dir.join("pokec.txt");
        fs::write(&path, "1\t2\n").unwrap();
        fs::write(
            dir.join("pokec.profiles.txt"),
            b"1\t1\t0\t1\tok\t20\n2\t1\t0\t0\t\xff\xfe\t30\n",
        )
        .unwrap();
        let mut src = PokecSource::open(&path).unwrap();
        let mut sink = GraphAssembler::new();
        let err = src.stream_into(&mut sink).unwrap_err();
        assert!(matches!(err, IngestError::Utf8 { line: 2, .. }), "{err}");
    }

    #[test]
    fn missing_profiles_sidecar_is_typed() {
        let dir = temp_dir("pokec-nosidecar");
        let path = dir.join("alone.txt");
        fs::write(&path, "1\t2\n").unwrap();
        assert!(matches!(
            PokecSource::open(&path),
            Err(IngestError::MissingSidecar { .. })
        ));
    }

    #[test]
    fn name_uses_file_stem() {
        let dir = temp_dir("pokec-name");
        let path = write_pair(&dir, "1\t2\n", "1\t1\t0\t1\tx\t20\n");
        let src = PokecSource::open(&path).unwrap();
        assert_eq!(src.name(), "Pokec(real:pokec)");
    }
}
