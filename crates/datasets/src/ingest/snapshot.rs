//! Versioned binary snapshot cache (`.csbin`).
//!
//! Parsing a multi-gigabyte dump dominates repeat experiment runs, so
//! the first successful parse is cached next to its source as
//! `<input>.csbin` and later runs deserialise that instead. The layout
//! is little-endian throughout and documented in `docs/FORMATS.md`:
//!
//! ```text
//! magic "CSBN" · version u16 · format-tag u8 · reserved u8 · fingerprint u64
//! one checksummed frame ([`cspm_graph::codec`], tag 0x01) wrapping:
//!   name str16 · category str16 · n u32 · m u32 · a u32
//!   a × attr-name str16
//!   n × (label-count u16, count × attr-id u32)
//!   m × (u u32, v u32)
//! ```
//!
//! where `str16` is a u16 byte length followed by UTF-8 bytes. The
//! fingerprint hashes the byte length and mtime of every source file
//! (main dump + sidecars); a mismatch means a source changed and the
//! snapshot must be rebuilt ([`IngestError::SnapshotStale`]). The
//! format tag records which parser built the graph.
//!
//! Since v2 the whole body rides in one CRC-32 frame (the same codec
//! the session store uses), so a torn write or a bit-flipped byte is
//! *detected* — [`IngestError::SnapshotCorrupt`], which callers treat
//! as "re-parse and rewrite" — instead of deserialising garbage. The
//! header stays outside the frame on purpose: magic, version and
//! fingerprint decide *which* error to raise (foreign file, version
//! skew, stale cache) and must be readable even when the body is not.
//! Every way a file can disagree with this layout maps to a typed
//! [`IngestError`] — never a panic.

use std::fs;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use cspm_graph::codec::{read_frame, write_frame, FrameError};
use cspm_graph::{AttrTable, AttributedGraph};

use super::error::IngestError;

/// First four bytes of every snapshot.
pub const CSBIN_MAGIC: [u8; 4] = *b"CSBN";
/// Layout version this build reads and writes. v2 = checksummed body
/// frame; v1 files (no checksum) are rebuilt via the version check.
pub const CSBIN_VERSION: u16 = 2;

/// Frame tag of the single body frame following the header.
const CSBIN_BODY_TAG: u8 = 0x01;

/// Snapshot path for a source dump: `<input>.csbin` alongside it.
pub fn snapshot_path(input: &Path) -> PathBuf {
    let mut name = input.file_name().unwrap_or_default().to_os_string();
    name.push(".csbin");
    input.with_file_name(name)
}

/// Fingerprint of a dump's source files — the main file **and** its
/// sidecars (Pokec profiles, USFlight airports), so editing either
/// invalidates the snapshot. FNV-1a over each file's byte length and
/// mtime at full filesystem resolution (even a same-length rewrite
/// within the same second is detected). Cheap — no content read — yet
/// invalidates on any rewrite: editing a file updates its mtime, and
/// `git checkout` rewrites it entirely.
pub fn source_fingerprint(files: &[PathBuf]) -> Result<u64, IngestError> {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    for file in files {
        let meta = fs::metadata(file)?;
        let mtime = meta
            .modified()?
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos())
            .unwrap_or(0);
        for b in meta
            .len()
            .to_le_bytes()
            .into_iter()
            .chain(mtime.to_le_bytes())
        {
            mix(b);
        }
    }
    Ok(h)
}

/// Writes `graph` (with its display metadata) as a `.csbin` snapshot.
/// `format_tag` records which parser built the graph (see
/// `Format::tag`), so a later run requesting a different format
/// doesn't get served this cache. A graph the layout cannot represent
/// (a count past its field width) is a typed error, never a silently
/// truncated file; callers keep the parsed graph and simply run
/// uncached.
pub fn write_snapshot(
    path: &Path,
    fingerprint: u64,
    format_tag: u8,
    name: &str,
    category: &str,
    graph: &AttributedGraph,
) -> Result<(), IngestError> {
    let unrepresentable = |message| IngestError::SnapshotCorrupt {
        path: path.to_path_buf(),
        message,
    };
    let (n, m, a) = (
        u32::try_from(graph.vertex_count())
            .map_err(|_| unrepresentable("more than u32::MAX vertices"))?,
        u32::try_from(graph.edge_count())
            .map_err(|_| unrepresentable("more than u32::MAX edges"))?,
        u32::try_from(graph.attr_count())
            .map_err(|_| unrepresentable("more than u32::MAX attribute values"))?,
    );
    // The body is assembled in memory so the frame footer can checksum
    // it as one unit (`Vec<u8>` is a `Write`r, so the helpers below
    // serve both the old streaming shape and this one).
    let mut body: Vec<u8> = Vec::new();
    write_str16(&mut body, path, name)?;
    write_str16(&mut body, path, category)?;
    body.extend_from_slice(&n.to_le_bytes());
    body.extend_from_slice(&m.to_le_bytes());
    body.extend_from_slice(&a.to_le_bytes());
    for (_, attr_name) in graph.attrs().iter() {
        write_str16(&mut body, path, attr_name)?;
    }
    for v in graph.vertices() {
        let labels = graph.labels(v);
        let count = u16::try_from(labels.len())
            .map_err(|_| unrepresentable("more than u16::MAX labels on one vertex"))?;
        body.extend_from_slice(&count.to_le_bytes());
        for &a in labels {
            body.extend_from_slice(&a.to_le_bytes());
        }
    }
    for (u, v) in graph.edges() {
        body.extend_from_slice(&u.to_le_bytes());
        body.extend_from_slice(&v.to_le_bytes());
    }

    let mut w = BufWriter::new(fs::File::create(path)?);
    w.write_all(&CSBIN_MAGIC)?;
    w.write_all(&CSBIN_VERSION.to_le_bytes())?;
    w.write_all(&[format_tag, 0])?;
    w.write_all(&fingerprint.to_le_bytes())?;
    let mut framed = Vec::with_capacity(body.len() + 16);
    write_frame(&mut framed, CSBIN_BODY_TAG, &body);
    w.write_all(&framed)?;
    w.flush()?;
    Ok(())
}

/// A successfully loaded snapshot.
#[derive(Debug)]
pub struct LoadedSnapshot {
    /// Which parser built the snapshot (see `Format::tag`).
    pub format_tag: u8,
    /// Dataset display name recorded at write time.
    pub name: String,
    /// Table II category recorded at write time.
    pub category: String,
    /// The reconstructed graph.
    pub graph: AttributedGraph,
}

/// Loads a `.csbin` snapshot, verifying magic, layout version and the
/// source fingerprint. Pass the current [`source_fingerprint`] of the
/// dump; a mismatch yields [`IngestError::SnapshotStale`].
pub fn load_snapshot(
    path: &Path,
    expected_fingerprint: u64,
) -> Result<LoadedSnapshot, IngestError> {
    let bytes = fs::read(path)?;
    let mut c = Cursor {
        bytes: &bytes,
        pos: 0,
        path,
    };
    if c.take(4)? != CSBIN_MAGIC {
        return Err(IngestError::SnapshotMagic {
            path: path.to_path_buf(),
        });
    }
    let version = u16::from_le_bytes(c.take(2)?.try_into().unwrap());
    if version != CSBIN_VERSION {
        return Err(IngestError::SnapshotVersion {
            path: path.to_path_buf(),
            found: version,
        });
    }
    let format_tag = c.take(2)?[0]; // second byte reserved
    let fingerprint = u64::from_le_bytes(c.take(8)?.try_into().unwrap());
    if fingerprint != expected_fingerprint {
        return Err(IngestError::SnapshotStale {
            path: path.to_path_buf(),
        });
    }
    // Everything else lives in one checksummed frame; a torn tail or a
    // flipped bit anywhere in it surfaces here, before any parsing.
    let body = match read_frame(&bytes, c.pos) {
        Ok(Some((CSBIN_BODY_TAG, payload, next))) => match read_frame(&bytes, next) {
            Ok(None) => payload,
            _ => return Err(c.corrupt("trailing bytes after the body frame")),
        },
        Ok(Some(_)) => return Err(c.corrupt("unexpected body frame tag")),
        Ok(None) => return Err(c.corrupt("missing body frame")),
        Err(FrameError::Truncated { .. }) => {
            return Err(c.corrupt("body frame is truncated (torn write)"))
        }
        Err(FrameError::Checksum { .. }) => {
            return Err(c.corrupt("body frame fails its checksum (bit flip)"))
        }
    };
    let mut c = Cursor {
        bytes: body,
        pos: 0,
        path,
    };
    let name = c.str16()?;
    let category = c.str16()?;
    let n = c.u32()? as usize;
    let m = c.u32()? as usize;
    let a = c.u32()? as usize;
    // Counts bound what follows; reject impossible ones before any
    // allocation sized by them.
    if (c.bytes.len() - c.pos) < n * 2 + m * 8 {
        return Err(c.corrupt("counts exceed file size"));
    }
    let mut attrs = AttrTable::new();
    for _ in 0..a {
        attrs.intern(&c.str16()?);
    }
    if attrs.len() != a {
        return Err(c.corrupt("duplicate attribute names"));
    }
    let mut labels: Vec<Vec<u32>> = Vec::with_capacity(n);
    for _ in 0..n {
        let k = u16::from_le_bytes(c.take(2)?.try_into().unwrap()) as usize;
        let mut row = Vec::with_capacity(k);
        for _ in 0..k {
            let id = c.u32()?;
            if id as usize >= a {
                return Err(c.corrupt("attribute id out of range"));
            }
            row.push(id);
        }
        labels.push(row);
    }
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        edges.push((c.u32()?, c.u32()?));
    }
    let graph = AttributedGraph::from_edge_list(labels, attrs, edges).map_err(|_| {
        IngestError::SnapshotCorrupt {
            path: path.to_path_buf(),
            message: "edge list references invalid vertices",
        }
    })?;
    Ok(LoadedSnapshot {
        format_tag,
        name,
        category,
        graph,
    })
}

fn write_str16<W: Write>(w: &mut W, path: &Path, s: &str) -> Result<(), IngestError> {
    let bytes = s.as_bytes();
    let len = u16::try_from(bytes.len()).map_err(|_| IngestError::SnapshotCorrupt {
        path: path.to_path_buf(),
        message: "string longer than 64 KiB",
    })?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(bytes)?;
    Ok(())
}

/// Bounds-checked reader over the snapshot bytes: running past the end
/// is [`IngestError::SnapshotCorrupt`], not a slice panic.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    path: &'a Path,
}

impl<'a> Cursor<'a> {
    fn corrupt(&self, message: &'static str) -> IngestError {
        IngestError::SnapshotCorrupt {
            path: self.path.to_path_buf(),
            message,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], IngestError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(())
            .map_err(|_| self.corrupt("length overflow"))?;
        if end > self.bytes.len() {
            return Err(self.corrupt("file ends mid-record"));
        }
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, IngestError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn str16(&mut self) -> Result<String, IngestError> {
        let len = u16::from_le_bytes(self.take(2)?.try_into().unwrap()) as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.corrupt("string is not UTF-8"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dblp_like, Scale};

    fn temp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("cspm-snapshot-tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip_preserves_graph_and_metadata() {
        let d = dblp_like(Scale::Tiny, 3);
        let path = temp("roundtrip.csbin");
        write_snapshot(&path, 77, 2, d.name, d.category, &d.graph).unwrap();
        let s = load_snapshot(&path, 77).unwrap();
        assert_eq!(s.name, d.name);
        assert_eq!(s.category, d.category);
        assert_eq!(s.graph, d.graph);
    }

    #[test]
    fn fingerprint_mismatch_is_stale() {
        let d = dblp_like(Scale::Tiny, 3);
        let path = temp("stale.csbin");
        write_snapshot(&path, 1, 2, d.name, d.category, &d.graph).unwrap();
        assert!(matches!(
            load_snapshot(&path, 2),
            Err(IngestError::SnapshotStale { .. })
        ));
    }

    #[test]
    fn version_and_magic_are_checked() {
        let d = dblp_like(Scale::Tiny, 3);
        let path = temp("version.csbin");
        write_snapshot(&path, 1, 2, d.name, d.category, &d.graph).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes[4] = 0xEE; // version low byte
        fs::write(&path, &bytes).unwrap();
        match load_snapshot(&path, 1) {
            Err(IngestError::SnapshotVersion { found, .. }) => assert_eq!(found, 0xEE),
            other => panic!(
                "expected SnapshotVersion, got {other:?}",
                other = other.err()
            ),
        }
        bytes[0] = b'X';
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_snapshot(&path, 1),
            Err(IngestError::SnapshotMagic { .. })
        ));
    }

    #[test]
    fn truncation_is_a_typed_error_not_a_panic() {
        let d = dblp_like(Scale::Tiny, 3);
        let path = temp("truncated.csbin");
        write_snapshot(&path, 1, 2, d.name, d.category, &d.graph).unwrap();
        let bytes = fs::read(&path).unwrap();
        // Chop at several depths: header, attr table, labels, edges.
        for keep in [3usize, 10, 30, bytes.len() / 2, bytes.len() - 3] {
            fs::write(&path, &bytes[..keep]).unwrap();
            let err = load_snapshot(&path, 1).unwrap_err();
            assert!(
                err.is_snapshot(),
                "keep={keep}: expected snapshot error, got {err}"
            );
        }
    }

    #[test]
    fn bit_flips_anywhere_in_the_body_are_detected() {
        let d = dblp_like(Scale::Tiny, 3);
        let path = temp("bitflip.csbin");
        write_snapshot(&path, 9, 2, d.name, d.category, &d.graph).unwrap();
        let pristine = fs::read(&path).unwrap();
        // Every byte past the 16-byte header is under the frame CRC:
        // one flipped bit anywhere must surface as a recoverable
        // snapshot error (callers re-parse the dump), never as a
        // silently different graph and never as a panic.
        for at in 16..pristine.len() {
            let mut bytes = pristine.clone();
            bytes[at] ^= 1 << (at % 8);
            fs::write(&path, &bytes).unwrap();
            let err = load_snapshot(&path, 9).unwrap_err();
            assert!(
                matches!(err, IngestError::SnapshotCorrupt { .. }),
                "flip at byte {at} slipped through: {err}"
            );
            assert!(err.is_snapshot(), "flip at {at}: must be recoverable");
        }
        // Header flips are caught by their own fields: magic, version,
        // fingerprint. (The format tag byte is advisory only.)
        let mut bytes = pristine.clone();
        bytes[0] ^= 0x20;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_snapshot(&path, 9),
            Err(IngestError::SnapshotMagic { .. })
        ));
        let mut bytes = pristine.clone();
        bytes[10] ^= 0x01; // fingerprint
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_snapshot(&path, 9),
            Err(IngestError::SnapshotStale { .. })
        ));
    }

    #[test]
    fn unrepresentable_graphs_error_instead_of_truncating() {
        let d = dblp_like(Scale::Tiny, 3);
        let path = temp("unrepresentable.csbin");
        // A dataset name past the str16 width must be rejected, not
        // silently cut (possibly mid-UTF-8 char).
        let long_name = "x".repeat(u16::MAX as usize + 1);
        let err = write_snapshot(&path, 1, 2, &long_name, d.category, &d.graph).unwrap_err();
        assert!(matches!(err, IngestError::SnapshotCorrupt { .. }), "{err}");
    }

    #[test]
    fn fingerprint_tracks_subsecond_rewrites() {
        let dir = temp("fp-source");
        fs::write(&dir, "same length A").unwrap();
        let a = source_fingerprint(std::slice::from_ref(&dir)).unwrap();
        // Same byte length, rewritten immediately: mtime (at full
        // filesystem resolution) must still distinguish the versions.
        std::thread::sleep(std::time::Duration::from_millis(5));
        fs::write(&dir, "same length B").unwrap();
        let b = source_fingerprint(std::slice::from_ref(&dir)).unwrap();
        assert_ne!(a, b, "subsecond same-length rewrite went undetected");
    }

    #[test]
    fn snapshot_path_appends_extension() {
        assert_eq!(
            snapshot_path(Path::new("/data/pokec_small.txt")),
            PathBuf::from("/data/pokec_small.txt.csbin")
        );
    }
}
