//! Benchmark datasets for the CSPM reproduction: seeded synthetic
//! generators, and (behind the `real-data` feature) streaming loaders
//! for the paper's real dataset dumps.
//!
//! The paper evaluates on DBLP, DBLP-Trend, USFlight and Pokec (Table II)
//! plus Cora/Citeseer/DBLP for node attribute completion (Table IV). We
//! do not ship those datasets; instead each generator produces a graph
//! with the same *scale* (vertices, edges, attribute universe) and the
//! same *structural property the experiments rely on*: attribute values
//! of neighbouring vertices are correlated through planted a-star-style
//! rules, layered with noise. All generators are deterministic given a
//! seed (see DESIGN.md §5 for the substitution rationale).
//!
//! To mine the *actual* dumps, enable `real-data` and use the `ingest`
//! module: it streams SNAP-style Pokec, DBLP co-authorship CSV and
//! USFlight route/attribute tables into the graph builder and caches
//! the result in a versioned `.csbin` snapshot (`docs/FORMATS.md`
//! specifies both the inputs and the snapshot layout).
//!
//! # Example
//!
//! ```
//! use cspm_datasets::{dblp_like, Scale};
//! let d = dblp_like(Scale::Small, 7);
//! assert!(d.graph.is_connected());
//! assert!(d.graph.vertex_count() > 100);
//! ```

mod citation;
mod completion_nets;
mod flight;
#[cfg(feature = "real-data")]
pub mod ingest;
mod io;
mod planted;
mod social;
mod util;

pub use citation::{dblp_like, dblp_trend_like};
pub use completion_nets::{citation_completion, CompletionDataset, CompletionKind};
pub use flight::usflight_like;
pub use io::{load_dataset, save_dataset};
pub use planted::{planted_astars, PlantedConfig, PlantedTruth};
pub use social::pokec_like;

use cspm_graph::AttributedGraph;

/// Generation scale. `Paper` matches Table II's node/edge counts;
/// `Small` is a fast CI-friendly reduction with the same structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Scale used in the paper's Table II.
    Paper,
    /// ~10× smaller, same generative structure.
    Small,
    /// Tiny graphs for unit tests.
    Tiny,
}

/// A generated benchmark dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Human-readable name (e.g. `"DBLP(synthetic)"`).
    pub name: &'static str,
    /// Category column of Table II.
    pub category: &'static str,
    /// The attributed graph.
    pub graph: AttributedGraph,
}

impl Dataset {
    /// Table II statistics: `(#nodes, #edges, |A|)`.
    pub fn statistics(&self) -> (usize, usize, usize) {
        (
            self.graph.vertex_count(),
            self.graph.edge_count(),
            self.graph.attr_count(),
        )
    }
}

/// The four Table II benchmark datasets at the requested scale.
/// Pokec at `Scale::Paper` is very large (1.6M vertices); prefer
/// `Scale::Small` unless reproducing the full runtime table.
pub fn benchmark_suite(scale: Scale, seed: u64) -> Vec<Dataset> {
    vec![
        dblp_like(scale, seed),
        dblp_trend_like(scale, seed.wrapping_add(1)),
        usflight_like(scale, seed.wrapping_add(2)),
        pokec_like(scale, seed.wrapping_add(3)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_four_connected_datasets() {
        let suite = benchmark_suite(Scale::Tiny, 42);
        assert_eq!(suite.len(), 4);
        for d in &suite {
            assert!(d.graph.is_connected(), "{} must be connected", d.name);
            assert!(d.graph.attr_count() > 0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = dblp_like(Scale::Tiny, 9);
        let b = dblp_like(Scale::Tiny, 9);
        assert_eq!(a.graph, b.graph);
        let c = dblp_like(Scale::Tiny, 10);
        assert_ne!(a.graph, c.graph);
    }
}
