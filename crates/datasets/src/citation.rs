//! DBLP-like and DBLP-Trend-like citation networks (Table II rows 1–2).
//!
//! Researchers (vertices) co-author (edges) within research areas
//! (communities); attribute values are the venues they published in
//! (DBLP) or venue+trend indicators such as `ICDE+` (DBLP-Trend). The
//! key property the experiments rely on — venues of co-authors are
//! correlated because they share a research area — is planted explicitly.

use cspm_graph::GraphBuilder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::util::{community_edges, ensure_connected, zipf};
use crate::{Dataset, Scale};

/// Venue pools per research area, mirroring the paper's §VI-B examples
/// (PODS/ICDM/EDBT cluster together, etc.). Further venues are synthetic.
const SEED_VENUES: &[&[&str]] = &[
    &[
        "ICDM", "EDBT", "PODS", "KDD", "PAKDD", "DMKD", "SAC", "ICDE",
    ],
    &["NIPS", "ICML", "AAAI", "IJCAI", "COLT"],
    &["SIGCOMM", "INFOCOM", "NSDI", "IMC"],
    &["SOSP", "OSDI", "ATC", "EuroSys"],
];

fn scale_params(scale: Scale) -> (usize, usize, usize, usize) {
    // (nodes, edges, n_venues, n_areas)
    match scale {
        Scale::Paper => (2723, 3464, 127, 12),
        Scale::Small => (400, 560, 48, 6),
        Scale::Tiny => (60, 90, 16, 4),
    }
}

fn venue_names(n_venues: usize, n_areas: usize) -> Vec<Vec<String>> {
    let mut areas: Vec<Vec<String>> = vec![Vec::new(); n_areas];
    let mut count = 0usize;
    // Seed with real venue names first, then synthesise the rest.
    for (i, pool) in SEED_VENUES.iter().enumerate().take(n_areas) {
        for v in pool.iter() {
            if count >= n_venues {
                break;
            }
            areas[i].push((*v).to_owned());
            count += 1;
        }
    }
    let mut area = 0usize;
    while count < n_venues {
        areas[area % n_areas].push(format!("VEN{count}"));
        count += 1;
        area += 1;
    }
    areas.retain(|a| !a.is_empty());
    areas
}

fn build_citation(
    scale: Scale,
    seed: u64,
    decorate: impl Fn(&mut StdRng, &str) -> Vec<String>,
) -> cspm_graph::AttributedGraph {
    let (n, m, n_venues, n_areas) = scale_params(scale);
    let mut rng = StdRng::seed_from_u64(seed);
    let areas = venue_names(n_venues, n_areas);
    let mut b = GraphBuilder::with_capacity(n);
    let mut communities: Vec<Vec<u32>> = vec![Vec::new(); areas.len()];
    for v in 0..n {
        let area = rng.gen_range(0..areas.len());
        let k = 1 + zipf(&mut rng, 3, 1.2); // 1–3 venues per researcher
        let mut values: Vec<String> = Vec::new();
        for _ in 0..k {
            let venue = &areas[area][zipf(&mut rng, areas[area].len(), 1.1)];
            values.extend(decorate(&mut rng, venue));
        }
        // Occasional cross-area publication (noise).
        if rng.gen::<f64>() < 0.08 {
            let other = rng.gen_range(0..areas.len());
            let venue = &areas[other][zipf(&mut rng, areas[other].len(), 1.1)];
            values.extend(decorate(&mut rng, venue));
        }
        let id = b.add_vertex(values.iter());
        communities[area].push(id);
        let _ = v;
    }
    // Backbone: chain every community internally, then link consecutive
    // communities — exactly n−1 edges, connected by construction, and
    // homophilous (chains stay inside one research area). The remaining
    // edge budget goes to community-biased random co-authorships.
    assert!(m >= n, "edge budget must cover the backbone");
    let nonempty: Vec<&Vec<u32>> = communities.iter().filter(|c| !c.is_empty()).collect();
    for c in &nonempty {
        for w in c.windows(2) {
            b.add_edge(w[0], w[1]).unwrap();
        }
    }
    for w in nonempty.windows(2) {
        b.add_edge(w[0][0], w[1][0]).unwrap();
    }
    let backbone = b.edge_count();
    community_edges(&mut b, &mut rng, n, m - backbone, 0.88, &communities);
    ensure_connected(b, &mut rng)
}

/// DBLP-like co-authorship network: attribute values are venues.
pub fn dblp_like(scale: Scale, seed: u64) -> Dataset {
    let graph = build_citation(scale, seed, |_, venue| vec![venue.to_owned()]);
    Dataset {
        name: "DBLP(synthetic)",
        category: "Citation",
        graph,
    }
}

/// DBLP-Trend-like network: attribute values are venue+trend indicators
/// (`ICDE+`, `ICDE-`, `ICDE=`), with trends correlated inside an area so
/// that trend patterns like Fig. 6(b) arise.
pub fn dblp_trend_like(scale: Scale, seed: u64) -> Dataset {
    let graph = build_citation(scale, seed, |rng, venue| {
        // Bias towards '=' with fewer +/-: publication counts are stable
        // for most researchers year over year.
        let r = rng.gen::<f64>();
        let trend = if r < 0.5 {
            "="
        } else if r < 0.8 {
            "+"
        } else {
            "-"
        };
        vec![format!("{venue}{trend}")]
    });
    Dataset {
        name: "DBLP-Trend(synthetic)",
        category: "Citation",
        graph,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dblp_paper_scale_matches_table2() {
        let d = dblp_like(Scale::Paper, 1);
        let (n, m, a) = d.statistics();
        assert_eq!(n, 2723);
        assert_eq!(m, 3464);
        assert!(a <= 127 && a > 100, "attrs {a}");
    }

    #[test]
    fn trend_variant_has_larger_attribute_universe() {
        let plain = dblp_like(Scale::Small, 5);
        let trend = dblp_trend_like(Scale::Small, 5);
        assert!(trend.graph.attr_count() > plain.graph.attr_count());
        // Attribute names carry trend suffixes.
        let has_trend = trend
            .graph
            .attrs()
            .iter()
            .any(|(_, n)| n.ends_with('+') || n.ends_with('-') || n.ends_with('='));
        assert!(has_trend);
    }

    #[test]
    fn neighbours_share_venues_more_than_random() {
        // The homophily the completion task depends on: adjacent vertices
        // share attribute values far more often than random pairs.
        let d = dblp_like(Scale::Small, 3);
        let g = &d.graph;
        let share = |u: u32, v: u32| g.labels(u).iter().any(|a| g.labels(v).contains(a));
        let mut adjacent_share = 0usize;
        let mut total = 0usize;
        for (u, v) in g.edges() {
            total += 1;
            adjacent_share += usize::from(share(u, v));
        }
        let mut random_share = 0usize;
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..total {
            let u = rng.gen_range(0..g.vertex_count()) as u32;
            let v = rng.gen_range(0..g.vertex_count()) as u32;
            random_share += usize::from(u != v && share(u, v));
        }
        assert!(
            adjacent_share as f64 > random_share as f64 * 1.5,
            "adjacent {adjacent_share} vs random {random_share} of {total}"
        );
    }
}
