//! Shared generator utilities: community graphs, Zipf sampling,
//! connectivity repair.

use cspm_graph::{GraphBuilder, VertexId};
use rand::rngs::StdRng;
use rand::Rng;

/// Samples an index in `0..n` under a Zipf-like distribution with
/// exponent `s` (rank 1 most likely). Used for venue/genre popularity.
pub fn zipf(rng: &mut StdRng, n: usize, s: f64) -> usize {
    debug_assert!(n >= 1);
    // Inverse-CDF over precomputable weights would need allocation; for
    // generator purposes rejection sampling on the unnormalised mass is
    // simpler and fast enough (acceptance ≥ 1/harmonic).
    loop {
        let k = rng.gen_range(0..n);
        let w = 1.0 / ((k + 1) as f64).powf(s);
        if rng.gen::<f64>() < w {
            return k;
        }
    }
}

/// Adds `m` community-biased edges among `n` vertices: with probability
/// `homophily` both endpoints come from the same community (given by
/// `community(v)`), otherwise they are uniform. Self-loops/duplicates are
/// retried, so exactly `m` distinct edges are added (if possible).
pub fn community_edges(
    b: &mut GraphBuilder,
    rng: &mut StdRng,
    n: usize,
    m: usize,
    homophily: f64,
    communities: &[Vec<VertexId>],
) {
    assert!(n >= 2);
    let mut added = 0usize;
    let mut attempts = 0usize;
    let max_attempts = m.saturating_mul(50).max(1000);
    while added < m && attempts < max_attempts {
        attempts += 1;
        let (u, v) = if rng.gen::<f64>() < homophily && !communities.is_empty() {
            let c = &communities[rng.gen_range(0..communities.len())];
            if c.len() < 2 {
                continue;
            }
            (c[rng.gen_range(0..c.len())], c[rng.gen_range(0..c.len())])
        } else {
            (
                rng.gen_range(0..n) as VertexId,
                rng.gen_range(0..n) as VertexId,
            )
        };
        if u == v || b.has_edge(u, v) {
            continue;
        }
        b.add_edge(u, v).expect("vertices exist");
        added += 1;
    }
}

/// Makes the graph connected by chaining a representative of each
/// component to the previous one. Cheap union-find over current edges
/// would be cleaner, but the builder does not expose them; instead we
/// connect vertices with degree 0 heuristically and then stitch
/// remaining components after a build probe.
pub fn ensure_connected(mut b: GraphBuilder, rng: &mut StdRng) -> cspm_graph::AttributedGraph {
    loop {
        let g = b.clone().build_unchecked();
        let n = g.vertex_count();
        if n == 0 {
            return g;
        }
        // Find component representatives via BFS.
        let mut comp = vec![usize::MAX; n];
        let mut reps: Vec<VertexId> = Vec::new();
        let mut stack = Vec::new();
        for s in 0..n {
            if comp[s] != usize::MAX {
                continue;
            }
            let c = reps.len();
            reps.push(s as VertexId);
            comp[s] = c;
            stack.push(s as VertexId);
            while let Some(v) = stack.pop() {
                for &u in g.neighbors(v) {
                    if comp[u as usize] == usize::MAX {
                        comp[u as usize] = c;
                        stack.push(u);
                    }
                }
            }
        }
        if reps.len() == 1 {
            return g;
        }
        // Stitch: connect each component to a random vertex of the next.
        for w in reps.windows(2) {
            let other = (0..n)
                .map(|_| rng.gen_range(0..n) as VertexId)
                .find(|&v| comp[v as usize] == comp[w[1] as usize] as usize)
                .unwrap_or(w[1]);
            let _ = b.add_edge(w[0], other);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zipf_prefers_low_ranks() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..5000 {
            counts[zipf(&mut rng, 10, 1.0)] += 1;
        }
        assert!(
            counts[0] > counts[9] * 2,
            "rank 0 should dominate rank 9: {counts:?}"
        );
    }

    #[test]
    fn ensure_connected_repairs_components() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut b = GraphBuilder::new();
        for i in 0..10 {
            b.add_vertex([format!("x{i}")]);
        }
        b.add_edge(0, 1).unwrap();
        b.add_edge(2, 3).unwrap();
        let g = ensure_connected(b, &mut rng);
        assert!(g.is_connected());
    }

    #[test]
    fn community_edges_adds_requested_count() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut b = GraphBuilder::new();
        b.add_vertices(50);
        let comms: Vec<Vec<VertexId>> = vec![(0..25).collect(), (25..50).collect()];
        community_edges(&mut b, &mut rng, 50, 100, 0.9, &comms);
        assert_eq!(b.edge_count(), 100);
    }
}
