//! Saving and loading generated datasets.
//!
//! Generators are deterministic, but persisting the generated graphs
//! lets experiments pin exact inputs across machines and toolchain
//! versions (and lets users swap in real data in the same format).

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use cspm_graph::{read_graph, write_graph, GraphError};

use crate::Dataset;

/// Saves a dataset as a graph file plus a small metadata header
/// (encoded as comments, so the file stays a valid plain graph file).
pub fn save_dataset(d: &Dataset, path: &Path) -> Result<(), GraphError> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "#! name: {}", d.name)?;
    writeln!(w, "#! category: {}", d.category)?;
    let mut buf = Vec::new();
    write_graph(&d.graph, &mut buf)?;
    w.write_all(&buf)?;
    w.flush()?;
    Ok(())
}

/// Loads a dataset saved by [`save_dataset`]. Unknown names map to
/// static placeholders (the graph itself is always faithful).
pub fn load_dataset(path: &Path) -> Result<Dataset, GraphError> {
    let mut header_name = String::new();
    let mut header_category = String::new();
    {
        let r = BufReader::new(File::open(path)?);
        for line in r.lines().take(4) {
            let line = line?;
            if let Some(rest) = line.strip_prefix("#! name: ") {
                header_name = rest.to_owned();
            } else if let Some(rest) = line.strip_prefix("#! category: ") {
                header_category = rest.to_owned();
            }
        }
    }
    let graph = read_graph(File::open(path)?)?;
    Ok(Dataset {
        name: intern_static(&header_name),
        category: intern_static(&header_category),
        graph,
    })
}

/// Maps loaded names back to the static strings the generators use.
fn intern_static(s: &str) -> &'static str {
    const KNOWN: &[&str] = &[
        "DBLP(synthetic)",
        "DBLP-Trend(synthetic)",
        "USFlight(synthetic)",
        "Pokec(synthetic)",
        "Citation",
        "Airport",
        "Music",
        "Cora(synthetic)",
        "Citeseer(synthetic)",
    ];
    KNOWN.iter().find(|&&k| k == s).copied().unwrap_or("loaded")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dblp_like, Scale};

    #[test]
    fn roundtrip_preserves_graph_and_metadata() {
        let d = dblp_like(Scale::Tiny, 4);
        let dir = std::env::temp_dir().join("cspm-datasets-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dblp_tiny.graph");
        save_dataset(&d, &path).unwrap();
        let loaded = load_dataset(&path).unwrap();
        assert_eq!(loaded.name, "DBLP(synthetic)");
        assert_eq!(loaded.category, "Citation");
        assert_eq!(loaded.graph.vertex_count(), d.graph.vertex_count());
        assert_eq!(loaded.graph.edge_count(), d.graph.edge_count());
        // Attribute values survive by name.
        for v in d.graph.vertices() {
            let names = |g: &cspm_graph::AttributedGraph| -> Vec<String> {
                g.labels(v)
                    .iter()
                    .map(|&a| g.attrs().name(a).unwrap().to_owned())
                    .collect()
            };
            let (mut a, mut b) = (names(&d.graph), names(&loaded.graph));
            a.sort();
            b.sort();
            assert_eq!(a, b);
        }
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn unknown_names_fall_back() {
        assert_eq!(intern_static("whatever"), "loaded");
        assert_eq!(intern_static("Music"), "Music");
    }
}
