//! MDL (Minimum Description Length) substrate for the CSPM reproduction.
//!
//! This crate provides the coding machinery shared by Krimp, SLIM and
//! CSPM (§III "Compressing Patterns" and §IV-C/D of the paper):
//!
//! * Shannon-optimal code lengths `L(X) = -log2 P(X)`;
//! * the standard code table `ST` built from item frequencies;
//! * Rissanen's universal code for integers `L_N(n)` (used to price
//!   integer components of models, as in Krimp);
//! * entropy and conditional entropy helpers (Eq. 7);
//! * exact description-length bookkeeping with `0·log 0 = 0`;
//! * a totally-ordered float wrapper ([`OrdF64`]) for the gain-ordered
//!   collections of the mining engine's candidate scheduler.
//!
//! All code lengths are in bits (base-2 logarithms), represented as `f64`.
//! No actual encoding takes place — as the paper notes, "only the code
//! length of each pattern is necessary".

mod codes;
mod entropy;
mod ord;
mod table;

pub use codes::{log2_checked, shannon_len, universal_int_len, xlog2x};
pub use entropy::{conditional_entropy, entropy, entropy_of_counts};
pub use ord::OrdF64;
pub use table::StandardCodeTable;
