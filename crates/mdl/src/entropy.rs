//! Entropy and conditional entropy (Eq. 6–7 of the paper).

use crate::codes::xlog2x;

/// Shannon entropy of a probability distribution, in bits.
///
/// # Panics
/// Panics (debug) if the distribution does not sum to ≈1.
pub fn entropy(probs: &[f64]) -> f64 {
    debug_assert!(
        (probs.iter().sum::<f64>() - 1.0).abs() < 1e-9,
        "probabilities must sum to 1"
    );
    -probs.iter().copied().map(xlog2x).sum::<f64>()
}

/// Shannon entropy of raw counts (normalised internally).
///
/// Returns 0 for an all-zero or empty slice.
pub fn entropy_of_counts(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / t;
            -xlog2x(p)
        })
        .sum()
}

/// Conditional entropy `H(Y|X)` from a joint count table (Eq. 7):
/// `rows[j][i]` is the joint frequency `l_ij` of the `i`-th value of `Y`
/// with the `j`-th value of `X`. In the paper's terms each outer entry is
/// one coreset, each inner entry one a-star line.
///
/// `H(Y|X) = -Σ_j Σ_i (l_ij / s) · log2(l_ij / c_j)` with
/// `c_j = Σ_i l_ij` and `s = Σ_j c_j`.
pub fn conditional_entropy(rows: &[Vec<u64>]) -> f64 {
    let s: u64 = rows.iter().flat_map(|r| r.iter()).sum();
    if s == 0 {
        return 0.0;
    }
    let s = s as f64;
    let mut h = 0.0;
    for row in rows {
        let cj: u64 = row.iter().sum();
        if cj == 0 {
            continue;
        }
        let cj = cj as f64;
        for &lij in row.iter().filter(|&&l| l > 0) {
            let lij = lij as f64;
            h -= (lij / s) * (lij / cj).log2();
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_uniform_and_point() {
        assert!((entropy(&[0.25; 4]) - 2.0).abs() < 1e-12);
        assert!(entropy(&[1.0]).abs() < 1e-12);
    }

    #[test]
    fn entropy_of_counts_matches_entropy() {
        let counts = [3u64, 1];
        let h1 = entropy_of_counts(&counts);
        let h2 = entropy(&[0.75, 0.25]);
        assert!((h1 - h2).abs() < 1e-12);
        assert_eq!(entropy_of_counts(&[]), 0.0);
        assert_eq!(entropy_of_counts(&[0, 0]), 0.0);
    }

    #[test]
    fn conditional_entropy_of_deterministic_map_is_zero() {
        // Each X value has exactly one Y value: H(Y|X) = 0.
        let rows = vec![vec![5], vec![3]];
        assert!(conditional_entropy(&rows).abs() < 1e-12);
    }

    #[test]
    fn conditional_entropy_of_independent_uniform() {
        // Two X values, each with a uniform 2-way Y: H(Y|X) = 1 bit.
        let rows = vec![vec![2, 2], vec![4, 4]];
        assert!((conditional_entropy(&rows) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn conditional_entropy_never_exceeds_marginal_entropy() {
        // H(Y|X) <= H(Y) for arbitrary tables (data-processing sanity).
        let rows = vec![vec![3, 1, 0], vec![0, 2, 2], vec![1, 1, 1]];
        let mut y_marginal = vec![0u64; 3];
        for row in &rows {
            for (i, &l) in row.iter().enumerate() {
                y_marginal[i] += l;
            }
        }
        assert!(conditional_entropy(&rows) <= entropy_of_counts(&y_marginal) + 1e-12);
    }

    #[test]
    fn conditional_entropy_ignores_empty_rows() {
        let rows = vec![vec![0, 0], vec![2, 2]];
        assert!((conditional_entropy(&rows) - 1.0).abs() < 1e-12);
    }
}
