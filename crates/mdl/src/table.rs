//! The standard code table `ST` (§III, §IV-C).

use crate::codes::shannon_len;

/// Standard code table: Shannon-optimal code lengths for single items
/// derived from their global occurrence frequencies.
///
/// Items are dense `usize` ids (attribute values in CSPM, items in
/// Krimp/SLIM). The paper: "the standard code table is the optimal
/// encoding of all attributes without labels and structure information";
/// it also prices the *materialised* patterns stored inside code tables.
#[derive(Debug, Clone, PartialEq)]
pub struct StandardCodeTable {
    counts: Vec<u64>,
    total: u64,
}

impl StandardCodeTable {
    /// Builds the table from per-item occurrence counts.
    pub fn from_counts(counts: Vec<u64>) -> Self {
        let total = counts.iter().sum();
        Self { counts, total }
    }

    /// Builds the table by counting item occurrences in a stream.
    pub fn from_occurrences<I: IntoIterator<Item = usize>>(n_items: usize, occurrences: I) -> Self {
        let mut counts = vec![0u64; n_items];
        for item in occurrences {
            counts[item] += 1;
        }
        Self::from_counts(counts)
    }

    /// Number of items (the table covers ids `0..len`).
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Occurrence count of `item`.
    pub fn count(&self, item: usize) -> u64 {
        self.counts[item]
    }

    /// Total occurrence count over all items.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Shannon code length of `item` in bits: `-log2(count/total)`
    /// (Eq. 5). Infinite for items that never occur.
    pub fn code_len(&self, item: usize) -> f64 {
        shannon_len(self.counts[item], self.total)
    }

    /// Sum of code lengths of a set of items — the ST cost of
    /// materialising that set inside a code table.
    pub fn set_cost<I: IntoIterator<Item = usize>>(&self, items: I) -> f64 {
        items.into_iter().map(|i| self.code_len(i)).sum()
    }

    /// Cost of encoding the whole data stream with `ST` alone:
    /// `Σ_i count_i · L(i)`. This is the baseline description length
    /// `L(D|ST)` against which compression is measured.
    pub fn baseline_data_cost(&self) -> f64 {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| c as f64 * self.code_len(i))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_lengths_follow_frequencies() {
        // counts: a=3, b=2, c=2 → total 7 (the paper-example mapping table).
        let st = StandardCodeTable::from_counts(vec![3, 2, 2]);
        assert_eq!(st.total(), 7);
        assert!((st.code_len(0) - (7f64 / 3f64).log2()).abs() < 1e-12);
        assert!(st.code_len(0) < st.code_len(1));
        assert_eq!(st.code_len(1), st.code_len(2));
    }

    #[test]
    fn from_occurrences_counts() {
        let st = StandardCodeTable::from_occurrences(3, [0, 0, 1, 2, 0, 1]);
        assert_eq!(st.count(0), 3);
        assert_eq!(st.count(1), 2);
        assert_eq!(st.count(2), 1);
    }

    #[test]
    fn set_cost_is_additive() {
        let st = StandardCodeTable::from_counts(vec![4, 4]);
        assert!((st.set_cost([0, 1]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn baseline_cost_equals_total_times_entropy() {
        let st = StandardCodeTable::from_counts(vec![2, 2, 4]);
        let h = crate::entropy_of_counts(&[2, 2, 4]);
        assert!((st.baseline_data_cost() - 8.0 * h).abs() < 1e-9);
    }

    #[test]
    fn zero_count_item_has_infinite_code() {
        let st = StandardCodeTable::from_counts(vec![1, 0]);
        assert!(st.code_len(1).is_infinite());
    }
}
