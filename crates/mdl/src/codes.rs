//! Elementary code-length functions.

/// `x · log2 x` with the information-theoretic convention `0 · log 0 = 0`.
///
/// This is the workhorse of the gain equations (Eq. 8–15), which are sums
/// and differences of `f log f` terms.
#[inline]
pub fn xlog2x(x: f64) -> f64 {
    if x <= 0.0 {
        0.0
    } else {
        x * x.log2()
    }
}

/// `log2 x`, panicking on non-positive input (a misuse, not a data case).
#[inline]
pub fn log2_checked(x: f64) -> f64 {
    assert!(x > 0.0, "log2 of non-positive value {x}");
    x.log2()
}

/// Shannon-optimal code length `-log2(count/total)` in bits (Eq. 5).
///
/// Returns `f64::INFINITY` when `count == 0` (an item that never occurs
/// has no code), and panics when `total == 0`.
#[inline]
pub fn shannon_len(count: u64, total: u64) -> f64 {
    assert!(total > 0, "cannot take code length over an empty universe");
    if count == 0 {
        return f64::INFINITY;
    }
    debug_assert!(count <= total);
    -((count as f64 / total as f64).log2())
}

/// Rissanen's universal code length for an integer `n ≥ 1`:
/// `L_N(n) = log2(c0) + log2 n + log2 log2 n + …` summing positive terms,
/// with `c0 ≈ 2.865064`.
///
/// Krimp uses this code to price integer components of a model. It grows
/// like `log2 n`, so larger models cost more.
pub fn universal_int_len(n: u64) -> f64 {
    assert!(n >= 1, "universal code is defined for n >= 1");
    const LOG2_C0: f64 = 1.5185889; // log2(2.865064)
    let mut total = LOG2_C0;
    let mut x = (n as f64).log2();
    while x > 0.0 {
        total += x;
        x = x.log2();
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xlog2x_convention() {
        assert_eq!(xlog2x(0.0), 0.0);
        assert_eq!(xlog2x(-1.0), 0.0);
        assert!((xlog2x(8.0) - 24.0).abs() < 1e-12);
        assert_eq!(xlog2x(1.0), 0.0);
    }

    #[test]
    fn shannon_basics() {
        // Uniform: P = 1/4 -> 2 bits.
        assert!((shannon_len(1, 4) - 2.0).abs() < 1e-12);
        // Certain event: 0 bits.
        assert_eq!(shannon_len(8, 8), 0.0);
        // Never occurring: infinite.
        assert!(shannon_len(0, 5).is_infinite());
    }

    #[test]
    #[should_panic(expected = "empty universe")]
    fn shannon_rejects_zero_total() {
        let _ = shannon_len(1, 0);
    }

    #[test]
    fn universal_code_is_monotone() {
        let mut prev = 0.0;
        for n in 1..2000u64 {
            let len = universal_int_len(n);
            assert!(len >= prev - 1e-12, "L_N must be non-decreasing at n={n}");
            assert!(len.is_finite());
            prev = len;
        }
    }

    #[test]
    fn universal_code_known_values() {
        // L_N(1) = log2 c0 (all further terms are non-positive).
        assert!((universal_int_len(1) - 1.5185889).abs() < 1e-6);
        // L_N(2) adds log2 2 = 1.
        assert!((universal_int_len(2) - 2.5185889).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "log2 of non-positive")]
    fn log2_checked_rejects_zero() {
        let _ = log2_checked(0.0);
    }
}
