//! Totally-ordered floats for gain-ordered collections.

/// A totally-ordered `f64` wrapper (ordered by [`f64::total_cmp`]), for
/// use as a key in `BTreeSet`/`BinaryHeap`-style collections of gains
/// and code lengths.
///
/// Description-length deltas are always finite in this workspace, so the
/// exotic corners of `total_cmp` (NaN ordering, `-0.0 < 0.0`) never
/// influence mining decisions — they only make the ordering lawful.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OrdF64(pub f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl From<f64> for OrdF64 {
    fn from(v: f64) -> Self {
        Self(v)
    }
}

impl From<OrdF64> for f64 {
    fn from(v: OrdF64) -> Self {
        v.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_like_f64_on_finite_values() {
        let mut v = vec![OrdF64(3.5), OrdF64(-1.0), OrdF64(0.0), OrdF64(2.25)];
        v.sort();
        assert_eq!(
            v,
            vec![OrdF64(-1.0), OrdF64(0.0), OrdF64(2.25), OrdF64(3.5)]
        );
        assert!(OrdF64(1.0) < OrdF64(2.0));
        assert_eq!(OrdF64::from(4.0), OrdF64(4.0));
        assert_eq!(f64::from(OrdF64(4.0)), 4.0);
    }

    #[test]
    fn total_order_handles_specials() {
        // NaN sorts above +inf under total_cmp; equality is reflexive.
        assert!(OrdF64(f64::NAN) > OrdF64(f64::INFINITY));
        assert!(OrdF64(f64::NEG_INFINITY) < OrdF64(f64::MIN));
        let set: std::collections::BTreeSet<OrdF64> = [OrdF64(1.0), OrdF64(1.0), OrdF64(2.0)]
            .into_iter()
            .collect();
        assert_eq!(set.len(), 2);
    }
}
