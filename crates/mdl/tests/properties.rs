//! Property-based tests of the coding-theory identities the mining core
//! relies on.

use cspm_mdl::{
    conditional_entropy, entropy_of_counts, shannon_len, universal_int_len, xlog2x,
    StandardCodeTable,
};
use proptest::prelude::*;

proptest! {
    /// 0 ≤ H(counts) ≤ log2(#nonzero outcomes).
    #[test]
    fn entropy_bounds(counts in proptest::collection::vec(0u64..1000, 1..32)) {
        let h = entropy_of_counts(&counts);
        prop_assert!(h >= -1e-12);
        let support = counts.iter().filter(|&&c| c > 0).count();
        if support > 0 {
            prop_assert!(h <= (support as f64).log2() + 1e-9);
        } else {
            prop_assert_eq!(h, 0.0);
        }
    }

    /// The ST baseline cost is exactly `total · H` — the Shannon source
    /// coding identity the compression ratios are measured against.
    #[test]
    fn baseline_cost_identity(counts in proptest::collection::vec(0u64..500, 1..24)) {
        let total: u64 = counts.iter().sum();
        prop_assume!(total > 0);
        let st = StandardCodeTable::from_counts(counts.clone());
        let h = entropy_of_counts(&counts);
        prop_assert!((st.baseline_data_cost() - total as f64 * h).abs() < 1e-6);
    }

    /// Code lengths are antitone in counts: more frequent = shorter.
    #[test]
    fn shannon_len_is_antitone(a in 1u64..1000, b in 1u64..1000, extra in 0u64..1000) {
        let total = a + b + extra;
        let (la, lb) = (shannon_len(a, total), shannon_len(b, total));
        if a >= b {
            prop_assert!(la <= lb + 1e-12);
        } else {
            prop_assert!(la >= lb - 1e-12);
        }
    }

    /// H(Y|X) ≤ H(Y): conditioning never increases entropy.
    #[test]
    fn conditioning_reduces_entropy(
        rows in proptest::collection::vec(
            proptest::collection::vec(0u64..50, 4),
            1..8,
        ),
    ) {
        let mut y_marginal = vec![0u64; 4];
        for row in &rows {
            for (i, &c) in row.iter().enumerate() {
                y_marginal[i] += c;
            }
        }
        prop_assert!(conditional_entropy(&rows) <= entropy_of_counts(&y_marginal) + 1e-9);
    }

    /// `xlog2x` is superadditive on merges: merging two positive masses
    /// increases Σ x·log2 x (the mechanism behind Eq. 13's positive
    /// gain for totally-merged rows).
    #[test]
    fn xlog2x_superadditive(a in 1u64..10_000, b in 1u64..10_000) {
        let (a, b) = (a as f64, b as f64);
        prop_assert!(xlog2x(a + b) >= xlog2x(a) + xlog2x(b) - 1e-9);
    }

    /// The universal integer code is monotone and grows like log2.
    #[test]
    fn universal_code_growth(n in 1u64..1_000_000) {
        let l = universal_int_len(n);
        prop_assert!(l >= universal_int_len(1) - 1e-12);
        prop_assert!(l >= (n as f64).log2());
        // Loose upper bound: log2 n + O(log log n) + c0.
        prop_assert!(l <= (n as f64).log2() + 2.0 * ((n as f64).log2() + 2.0).log2().max(0.0) + 4.0);
    }
}
