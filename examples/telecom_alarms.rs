//! Telecom alarm correlation analysis (§VI-D): simulate a metro network
//! fault log, mine cause→derivative rules with CSPM, and compare its
//! ranking against the ACOR baseline by coverage ratio.
//!
//! ```text
//! cargo run --release --example telecom_alarms
//! ```

use cspm::alarm::{
    acor_rank, compress_log, coverage_curve, cspm_rank, simulate, RuleLibrary, SimConfig,
    TelecomTopology,
};

fn main() {
    // A small metro network and rule library (paper shape: 11 rules over
    // 300 types decomposing into 121 pairs; scaled down here).
    let topo = TelecomTopology::generate(4, 12, 80, 42);
    let rules = RuleLibrary::generate(8, 40, 100, 43);
    let cfg = SimConfig {
        n_events: 20_000,
        n_windows: 120,
        ..Default::default()
    };
    let events = simulate(&topo, &rules, &cfg);
    println!(
        "simulated {} alarms on {} devices / {} links; {} ground-truth pair rules",
        events.len(),
        topo.n_devices(),
        topo.n_links(),
        rules.pair_rules().len()
    );

    let cspm = cspm_rank(&topo, &events, cfg.window_ms);
    let acor = acor_rank(&topo, &events, cfg.window_ms);
    println!(
        "CSPM produced {} ranked rules, ACOR {}",
        cspm.len(),
        acor.len()
    );

    println!("\ntop-5 CSPM rules (cause -> derivative, valid?):");
    let valid = rules.pair_rules();
    for r in cspm.iter().take(5) {
        let ok = valid.contains(&(r.cause, r.derivative));
        println!(
            "  A{} -> A{}  score {:.2}  {}",
            r.cause,
            r.derivative,
            r.score,
            if ok { "valid" } else { "-" }
        );
    }

    let ks = [10usize, 25, 50, 100, 200, 400];
    println!("\ncoverage ratio (Fig. 8 shape):");
    println!("{:>6} {:>8} {:>8}", "top-K", "CSPM", "ACOR");
    let c1 = coverage_curve(&valid, &cspm, &ks);
    let c2 = coverage_curve(&valid, &acor, &ks);
    for ((k, a), (_, b)) in c1.iter().zip(&c2) {
        println!("{k:>6} {a:>8.3} {b:>8.3}");
    }

    // The AABD deployment use case: suppress derivative alarms whose
    // cause is active nearby, showing operators only root causes.
    let report = compress_log(
        &topo,
        &events,
        &cspm,
        2 * valid.len(),
        cfg.window_ms,
        Some(&rules),
    );
    println!(
        "\nalarm compression with top-{} CSPM rules: {} of {} alarms suppressed \
         ({:.1}%), suppression precision {:.3}",
        2 * valid.len(),
        report.suppressed,
        events.len(),
        report.compression_ratio * 100.0,
        report.suppression_precision()
    );
}
