//! Flight-network trend analysis (the paper's USFlight scenario,
//! §VI-B(2)): rediscover the planted a-star
//! `({NbDepart-}, {NbDepart+, DelayArriv-})` — when an airport reduces
//! departures, connected airports absorb the traffic and their arrival
//! delays drop.
//!
//! ```text
//! cargo run --release --example flight_trends
//! ```

use cspm::core::{cspm_partial, CspmConfig};
use cspm::datasets::{usflight_like, Scale};

fn main() {
    let dataset = usflight_like(Scale::Paper, 5);
    let g = &dataset.graph;
    println!(
        "{}: {} airports, {} routes, {} trend indicators",
        dataset.name,
        g.vertex_count(),
        g.edge_count(),
        g.attr_count()
    );

    let result = cspm_partial(g, CspmConfig::default());
    println!(
        "DL {:.0} -> {:.0} bits in {} merges; {} a-stars\n",
        result.initial_dl,
        result.final_dl,
        result.merges,
        result.model.len()
    );

    println!("top trend patterns:");
    for m in result.model.non_trivial(2).take(6) {
        println!(
            "  {}  fL={} L={:.2}",
            m.astar.display(g.attrs()),
            m.frequency,
            m.code_len
        );
    }

    // Look for the planted correlation among the mined patterns.
    let dep_minus = g.attrs().get("NbDepart-");
    let dep_plus = g.attrs().get("NbDepart+");
    let delay_minus = g.attrs().get("DelayArriv-");
    if let (Some(dm), Some(dp), Some(da)) = (dep_minus, dep_plus, delay_minus) {
        let hit = result.model.astars().iter().find(|m| {
            m.astar.coreset().contains(&dm)
                && m.astar.leafset().contains(&dp)
                && m.astar.leafset().contains(&da)
        });
        match hit {
            Some(m) => println!(
                "\nplanted pattern found: {}  (L = {:.2} bits)",
                m.astar.display(g.attrs()),
                m.code_len
            ),
            None => println!("\nplanted pattern not merged into one a-star on this seed"),
        }
    }
}
