//! Dynamic attributed-graph mining (the paper's future-work item 2):
//! mine a-stars across a sequence of snapshots and separate persistent
//! temporal patterns from one-off events.
//!
//! ```text
//! cargo run --release --example dynamic_mining
//! ```

use cspm::core::{mine_dynamic, CspmConfig, Variant};
use cspm::datasets::{dblp_like, Scale};
use cspm::graph::dynamic::SnapshotSequence;

fn main() {
    // Five yearly snapshots of a DBLP-like co-authorship network. Each
    // year is generated independently, so recurring patterns reflect the
    // stable venue communities, not a single year's noise.
    let seq: SnapshotSequence = (0..5)
        .map(|year| dblp_like(Scale::Tiny, 100 + year).graph)
        .collect();
    println!(
        "{} snapshots, union graph: {} vertices / {} edges",
        seq.len(),
        seq.union_graph().vertex_count(),
        seq.union_graph().edge_count()
    );

    let result = mine_dynamic(&seq, Variant::Partial, CspmConfig::default());
    println!(
        "mined {} a-stars over the union ({} merges)\n",
        result.result.model.len(),
        result.result.merges
    );

    let union = seq.union_graph();
    println!("persistent patterns (recurring in >= 3 of 5 snapshots):");
    let mut shown = 0;
    for t in result.persistent(3) {
        let m = &result.result.model.astars()[t.astar_index];
        if m.astar.leafset().len() < 2 {
            continue; // show the merged (summarising) patterns
        }
        println!(
            "  {}  in {}/5 snapshots, {} occurrences, L={:.2} bits",
            m.astar.display(union.attrs()),
            t.snapshot_support,
            t.occurrences.len(),
            m.code_len
        );
        shown += 1;
        if shown == 6 {
            break;
        }
    }
    if shown == 0 {
        println!("  (none at this scale — try a larger one)");
    }
}
