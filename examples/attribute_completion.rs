//! Node attribute completion (§VI-C): complete the missing attribute
//! sets of 40% of the nodes of a citation network, showing how the CSPM
//! scoring module (Algorithm 5) boosts a baseline model via score fusion
//! (Fig. 7).
//!
//! ```text
//! cargo run --release --example attribute_completion
//! ```

use cspm::completion::{
    fuse_scores, ndcg_at_k, recall_at_k, CompletionModel, CompletionTask, CspmScorer, NeighAggre,
};
use cspm::datasets::{citation_completion, CompletionKind, Scale};
use cspm::nn::Matrix;

fn main() {
    let dataset = citation_completion(CompletionKind::Dblp, Scale::Small, 7);
    println!(
        "{}: {} papers, {} edges, {} attribute values",
        dataset.name,
        dataset.graph.vertex_count(),
        dataset.graph.edge_count(),
        dataset.graph.attr_count()
    );

    // Hide 40% of the nodes' attributes (the paper's protocol).
    let task = CompletionTask::split(&dataset.graph, 0.4, 99);
    println!(
        "{} attribute-missing nodes to complete\n",
        task.test_nodes.len()
    );

    // Mine a-stars on the observed part only, then score with Alg. 5.
    let scorer = CspmScorer::fit(&task);
    println!(
        "CSPM mined {} a-stars from the observed graph",
        scorer.model().len()
    );
    let cspm_scores = scorer.score_all(&task);

    // Baseline: parameterless neighbour aggregation.
    let baseline = NeighAggre;
    let plain = baseline.predict(&task);
    let fused = fuse_scores(&plain, &cspm_scores);

    let evaluate = |scores: &Matrix, name: &str| {
        let (mut r, mut n) = (0.0, 0.0);
        let k = dataset.ks[1];
        for &v in &task.test_nodes {
            r += recall_at_k(scores.row(v as usize), task.truth(v), k);
            n += ndcg_at_k(scores.row(v as usize), task.truth(v), k);
        }
        let count = task.test_nodes.len() as f64;
        println!(
            "{name:<18} Recall@{k} {:.4}  NDCG@{k} {:.4}",
            r / count,
            n / count
        );
        r / count
    };

    let a = evaluate(&plain, "NeighAggre");
    let b = evaluate(&fused, "CSPM+NeighAggre");
    println!(
        "\nimprovement from CSPM fusion: {:+.1}%",
        (b / a - 1.0) * 100.0
    );
}
