//! Social-network pattern analysis (the paper's Pokec scenario,
//! §VI-B(3)): discover music-taste a-stars such as
//! `({rap}, {rock, metal, pop, sladaky})` from friendship data.
//!
//! ```text
//! cargo run --release --example social_network
//! ```

use cspm::core::{cspm_partial, CspmConfig};
use cspm::datasets::{pokec_like, Scale};

fn main() {
    let dataset = pokec_like(Scale::Tiny, 2022);
    let g = &dataset.graph;
    println!(
        "{}: {} users, {} friendships, {} genres",
        dataset.name,
        g.vertex_count(),
        g.edge_count(),
        g.attr_count()
    );

    let result = cspm_partial(g, CspmConfig::default());
    println!(
        "mined {} a-stars ({} merges), DL {:.0} -> {:.0} bits\n",
        result.model.len(),
        result.merges,
        result.initial_dl,
        result.final_dl
    );

    // Show the summarising patterns (merged leafsets) first — these are
    // the taste communities.
    println!("top taste patterns (leafsets with >= 2 genres):");
    for m in result.model.non_trivial(2).take(8) {
        println!(
            "  {}  fL={} L={:.2} bits",
            m.astar.display(g.attrs()),
            m.frequency,
            m.code_len
        );
    }

    // Check that the planted young-listener cluster was rediscovered.
    let rap = g.attrs().get("rap").expect("genre exists");
    let found = result
        .model
        .non_trivial(2)
        .any(|m| m.astar.coreset().contains(&rap) || m.astar.leafset().contains(&rap));
    println!(
        "\nplanted 'rap' taste cluster rediscovered: {}",
        if found { "yes" } else { "no" }
    );
}
