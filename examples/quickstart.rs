//! Quickstart: mine a-stars from the paper's running example (Fig. 1).
//!
//! ```text
//! cargo run --example quickstart
//! ```

use cspm::core::{cspm_basic, cspm_partial, CspmConfig, Variant};
use cspm::graph::fixtures::paper_example;

fn main() {
    // The Fig. 1 graph: five vertices, attribute values {a, b, c}.
    let (graph, _) = paper_example();
    println!(
        "input graph: {} vertices, {} edges, {} attribute values\n",
        graph.vertex_count(),
        graph.edge_count(),
        graph.attr_count()
    );

    // CSPM is parameter-free: the default config reproduces the paper.
    let result = cspm_partial(&graph, CspmConfig::default());
    println!(
        "CSPM-Partial: DL {:.2} -> {:.2} bits ({} merges, ratio {:.3})",
        result.initial_dl,
        result.final_dl,
        result.merges,
        result.compression_ratio()
    );
    println!("\nmined a-stars (most informative first):");
    print!("{}", result.model.format_top(graph.attrs(), 10));

    // The Basic variant regenerates all candidates each iteration; it can
    // squeeze out a few extra merges that Partial's rdict heuristic skips
    // (§V), at a much higher cost on large graphs.
    let basic = cspm_basic(&graph, CspmConfig::default());
    println!(
        "\nCSPM-Basic final DL: {:.2} bits in {} merges (default variant: {:?})",
        basic.final_dl,
        basic.merges,
        Variant::default()
    );
}
