//! `cspm` — command-line interface to the miner.
//!
//! ```text
//! cspm mine <graph-file> [--basic] [--data-only] [--top K] [--multi-core krimp|slim]
//!                        [--threads N] [--full-regen-cap N|none]
//! cspm mine --input <dump> [--format pokec|dblp|usflight|native|auto] [mine flags…]
//! cspm stats <graph-file>
//! cspm generate <dblp|dblp-trend|usflight|pokec> <out-file> [--scale tiny|small|paper] [--seed N]
//! cspm verify <graph-file>
//! ```
//!
//! Graph files use the plain-text format of `cspm::graph::read_graph`
//! (`v <id> <attr>…` / `e <u> <v>` lines). With the `real-data` feature,
//! `mine --input` instead ingests a real dataset dump (SNAP-style Pokec,
//! DBLP co-authorship CSV, USFlight route tables — see docs/FORMATS.md),
//! caching the parsed graph in a `.csbin` snapshot next to the dump so
//! repeat runs skip parsing.
//!
//! Scheduling knobs (speed only — mined output is bit-identical at any
//! setting): `--threads N` sets the candidate-scoring worker count
//! (default 0 = one per core, capped at 8); `--full-regen-cap N` sets
//! the candidate-pair count past which `--basic` (full regeneration)
//! delegates to the incremental policy (`none` disables delegation and
//! always honours `--basic`; default 10000).

use std::fs::File;
use std::process::ExitCode;

use cspm::core::{verify_lossless, CoresetMode, CspmConfig, GainPolicy, ModelSummary, Variant};
use cspm::datasets::{dblp_like, dblp_trend_like, pokec_like, save_dataset, usflight_like, Scale};
use cspm::graph::{metrics, read_graph, AttributedGraph};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  cspm mine <graph-file> [--basic] [--data-only] [--top K] [--multi-core krimp|slim]
                         [--threads N] [--full-regen-cap N|none]
  cspm mine --input <dump> [--format pokec|dblp|usflight|native|auto] [mine flags...]
  cspm stats <graph-file>
  cspm generate <dblp|dblp-trend|usflight|pokec> <out-file> [--scale tiny|small|paper] [--seed N]
  cspm verify <graph-file>

mine scheduling knobs (tune speed, never the mined model):
  --threads N          candidate-scoring worker threads (0 = auto, default)
  --full-regen-cap N   delegate --basic to the incremental policy past N
                       initial candidate pairs ('none' disables; default 10000)

real datasets (requires a build with --features real-data):
  --input <dump>       ingest a real dataset dump; parsed graphs are cached
                       in a versioned <dump>.csbin snapshot (docs/FORMATS.md)
  --format <name>      pokec|dblp|usflight|native, or auto-detect (default)";

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("mine") => mine(&args[1..]),
        Some("stats") => stats(&args[1..]),
        Some("generate") => generate(&args[1..]),
        Some("verify") => verify(&args[1..]),
        Some(other) => Err(format!("unknown command '{other}'")),
        None => Err("missing command".into()),
    }
}

fn load(path: &str) -> Result<AttributedGraph, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    read_graph(file).map_err(|e| format!("cannot parse {path}: {e}"))
}

/// Ingests a real dataset dump (`mine --input`), reporting how the
/// `.csbin` snapshot cache behaved; `tests/cli.rs` asserts these lines.
#[cfg(feature = "real-data")]
fn ingest_input(dump: &str, format: &str) -> Result<AttributedGraph, String> {
    use cspm::datasets::ingest::{self, SnapshotOutcome, SnapshotPolicy};

    let format = ingest::Format::from_cli(format)?;
    let path = std::path::Path::new(dump);
    let report = ingest::ingest(path, format, SnapshotPolicy::ReadWrite)
        .map_err(|e| format!("cannot ingest {dump}: {e}"))?;
    let (n, m, a) = report.dataset.statistics();
    let shape = format!("{n} vertices, {m} edges, {a} attribute values");
    match &report.snapshot {
        SnapshotOutcome::Loaded { path: snap } => println!(
            "ingest: loaded snapshot {} ({shape}) in {:.3}s",
            snap.display(),
            report.snapshot_load_secs
        ),
        SnapshotOutcome::Written { path: snap, invalidated } => {
            if let Some(reason) = invalidated {
                println!("ingest: discarded unusable snapshot ({reason})");
            }
            println!(
                "ingest: parsed {dump} as {} ({shape}) in {:.3}s; wrote snapshot {}",
                report.format,
                report.parse_secs,
                snap.display()
            );
        }
        SnapshotOutcome::WriteFailed { path: snap, reason } => println!(
            "ingest: parsed {dump} as {} ({shape}) in {:.3}s; could not write snapshot {}: {reason}",
            report.format,
            report.parse_secs,
            snap.display()
        ),
        SnapshotOutcome::Disabled => {}
    }
    if report.self_loops_skipped > 0 {
        println!(
            "ingest: skipped {} self-loop record(s)",
            report.self_loops_skipped
        );
    }
    println!(
        "dataset: {} [{}]",
        report.dataset.name, report.dataset.category
    );
    Ok(report.dataset.graph)
}

#[cfg(not(feature = "real-data"))]
fn ingest_input(_dump: &str, _format: &str) -> Result<AttributedGraph, String> {
    Err(
        "this build has no real-dataset support (the real-data feature is off); \
         rebuild with `cargo build --features real-data`, or fall back to the \
         synthetic generators: `cspm generate <kind> <file>` then `cspm mine <file>`"
            .into(),
    )
}

fn mine(args: &[String]) -> Result<(), String> {
    let mut config = CspmConfig::default();
    let mut variant = Variant::Partial;
    let mut top = 20usize;
    let mut graph_file: Option<&String> = None;
    let mut input: Option<&String> = None;
    let mut format: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--input" => {
                input = Some(it.next().ok_or("--input needs a dump path")?);
            }
            "--format" => {
                format = Some(
                    it.next()
                        .ok_or("--format needs pokec|dblp|usflight|native|auto")?
                        .clone(),
                );
            }
            "--basic" => variant = Variant::Basic,
            "--data-only" => config.gain_policy = GainPolicy::DataOnly,
            "--top" => {
                top = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--top needs a number")?;
            }
            "--multi-core" => {
                config.coreset_mode = match it.next().map(String::as_str) {
                    Some("krimp") => CoresetMode::Krimp { min_support: 2 },
                    Some("slim") => CoresetMode::Slim,
                    _ => return Err("--multi-core needs 'krimp' or 'slim'".into()),
                };
            }
            "--threads" => {
                config.threads = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--threads needs a number (0 = auto)")?;
            }
            "--full-regen-cap" => {
                config.full_regen_max_pairs = match it.next().map(String::as_str) {
                    Some("none") => None,
                    Some(s) => Some(
                        s.parse()
                            .map_err(|_| "--full-regen-cap needs a number or 'none'")?,
                    ),
                    None => return Err("--full-regen-cap needs a number or 'none'".into()),
                };
            }
            other if !other.starts_with('-') && graph_file.is_none() => graph_file = Some(a),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    let g = match (graph_file, input) {
        (Some(_), None) if format.is_some() => {
            // A format flag on the plain-text path would be silently
            // ignored — the user almost certainly forgot --input.
            return Err("--format only applies to --input <dump>".into());
        }
        (Some(path), None) => load(path)?,
        (None, Some(dump)) => ingest_input(dump, format.as_deref().unwrap_or("auto"))?,
        (Some(_), Some(_)) => {
            return Err("give either a graph file or --input <dump>, not both".into())
        }
        (None, None) => return Err("mine needs a graph file or --input <dump>".into()),
    };
    // Both variants are scheduling policies of the same engine.
    let result = cspm::core::mine(&g, variant, config);
    if result.stats.delegated {
        println!(
            "note: full regeneration delegated to the incremental policy \
             (initial candidate pairs exceeded --full-regen-cap)"
        );
    }
    println!(
        "mined {} a-stars in {} merges; DL {:.1} -> {:.1} bits (ratio {:.3})",
        result.model.len(),
        result.merges,
        result.initial_dl,
        result.final_dl,
        result.compression_ratio()
    );
    println!("{}", ModelSummary::new(&result.db, &result.model));
    println!("\ntop {top} patterns:");
    print!("{}", result.model.format_top(g.attrs(), top));
    Ok(())
}

fn stats(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("stats needs a graph file")?;
    let g = load(path)?;
    println!(
        "vertices: {}, edges: {}, attribute values: {}",
        g.vertex_count(),
        g.edge_count(),
        g.attr_count()
    );
    println!(
        "connected: {}, components: {}",
        g.is_connected(),
        g.component_count()
    );
    if let Some(d) = metrics::degree_stats(&g) {
        println!("degree: min {} / mean {:.2} / max {}", d.min, d.mean, d.max);
    }
    println!(
        "mean labels/vertex: {:.2}, attribute homophily: {:.3}, mean clustering: {:.3}",
        g.mean_labels_per_vertex(),
        metrics::attribute_homophily(&g),
        metrics::mean_clustering(&g)
    );
    println!("most frequent attribute values:");
    for (a, count) in metrics::attribute_histogram(&g).into_iter().take(10) {
        println!("  {:<24} {count}", g.attrs().name(a).unwrap_or("?"));
    }
    Ok(())
}

fn generate(args: &[String]) -> Result<(), String> {
    let kind = args.first().ok_or("generate needs a dataset kind")?;
    let out = args.get(1).ok_or("generate needs an output file")?;
    let mut scale = Scale::Small;
    let mut seed = 2022u64;
    let mut it = args[2..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = match it.next().map(String::as_str) {
                    Some("tiny") => Scale::Tiny,
                    Some("small") => Scale::Small,
                    Some("paper") => Scale::Paper,
                    _ => return Err("--scale needs tiny|small|paper".into()),
                };
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--seed needs a number")?;
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    let dataset = match kind.as_str() {
        "dblp" => dblp_like(scale, seed),
        "dblp-trend" => dblp_trend_like(scale, seed),
        "usflight" => usflight_like(scale, seed),
        "pokec" => pokec_like(scale, seed),
        other => return Err(format!("unknown dataset '{other}'")),
    };
    save_dataset(&dataset, std::path::Path::new(out))
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    let (n, m, a) = dataset.statistics();
    println!(
        "wrote {} ({n} vertices, {m} edges, {a} attribute values) to {out}",
        dataset.name
    );
    Ok(())
}

fn verify(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("verify needs a graph file")?;
    let g = load(path)?;
    g.validate()
        .map_err(|e| format!("input constraint violated: {e}"))?;
    let result = cspm::core::mine(&g, Variant::Partial, CspmConfig::default());
    let errors = verify_lossless(&g, &result.db);
    if errors.is_empty() {
        println!(
            "ok: model of {} a-stars decodes the graph losslessly (DL ratio {:.3})",
            result.model.len(),
            result.compression_ratio()
        );
        Ok(())
    } else {
        Err(format!(
            "lossless verification failed with {} errors",
            errors.len()
        ))
    }
}
