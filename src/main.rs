//! `cspm` — command-line interface to the miner.
//!
//! ```text
//! cspm mine <graph-file> [--basic] [--data-only] [--top K] [--multi-core krimp|slim]
//!                        [--threads N] [--full-regen-cap N|none] [--store <path>] [--json]
//! cspm mine --input <dump> [--format pokec|dblp|usflight|native|auto] [mine flags…]
//! cspm mine --store <path> [mine flags…]
//! cspm stats <graph-file> [--json]
//! cspm stats --store <path> [--json]
//! cspm generate <dblp|dblp-trend|usflight|pokec> <out-file> [--scale tiny|small|paper] [--seed N]
//! cspm verify <graph-file>
//! cspm serve --socket <path> [--store-dir <dir>] [--threads N] [--mem-budget BYTES]
//! cspm client <op> --socket <path> [op args…]
//! ```
//!
//! Graph files use the plain-text format of `cspm::graph::read_graph`
//! (`v <id> <attr>…` / `e <u> <v>` lines). With the `real-data` feature,
//! `mine --input` instead ingests a real dataset dump (SNAP-style Pokec,
//! DBLP co-authorship CSV, USFlight route tables — see docs/FORMATS.md),
//! caching the parsed graph in a `.csbin` snapshot next to the dump so
//! repeat runs skip parsing.
//!
//! Mining goes through a [`cspm::core::MiningSession`] (the library's
//! primary API); the CLI is one-shot, but `--json` exposes the same
//! machine-readable digest a session embedder would read off a
//! [`CspmResult`](cspm::core::CspmResult): run statistics, the model
//! summary, compression ratio, and the top patterns — as a single JSON
//! document on stdout (progress/ingest chatter moves to stderr).
//!
//! Scheduling knobs (speed only — mined output is bit-identical at any
//! setting): `--threads N` sets the candidate-scoring worker count
//! (default 0 = one per core, capped at 8); `--full-regen-cap N` sets
//! the candidate-pair count past which `--basic` (full regeneration)
//! delegates to the incremental policy (`none` disables delegation and
//! always honours `--basic`; default 10000).
//!
//! `--store <path>` makes the session durable (crash-safe snapshot +
//! delta WAL, [`cspm::store`]): `mine` seeds an empty store from the
//! given input and checkpoints, or warm-opens a populated one and
//! re-mines the recovered session; `stats --store` reports store
//! health — file sizes, generation, WAL records since the last
//! checkpoint, and how recovery went.

use std::fs::File;
use std::process::ExitCode;

use cspm::core::{
    verify_lossless, CoresetMode, CspmConfig, CspmResult, GainPolicy, ModelSummary, Variant,
};
use cspm::datasets::{dblp_like, dblp_trend_like, pokec_like, save_dataset, usflight_like, Scale};
use cspm::graph::{metrics, read_graph, AttributedGraph};
use cspm::serve::Json;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  cspm mine <graph-file> [--basic] [--data-only] [--top K] [--multi-core krimp|slim]
                         [--threads N] [--full-regen-cap N|none] [--store <path>] [--json]
  cspm mine --input <dump> [--format pokec|dblp|usflight|native|auto] [mine flags...]
  cspm mine --store <path> [mine flags...]
  cspm stats <graph-file> [--json]
  cspm stats --store <path> [--json]
  cspm generate <dblp|dblp-trend|usflight|pokec> <out-file> [--scale tiny|small|paper] [--seed N]
  cspm verify <graph-file>
  cspm serve --socket <path> [--store-dir <dir>] [--threads N]
                             [--mem-budget BYTES] [--compact-above F]
  cspm client ping|shutdown            --socket <path>
  cspm client open <session>           --socket <path> [--graph <file>]
  cspm client delta <session>          --socket <path> [--file <json>]
  cspm client mine <session>           --socket <path> [--deadline-ms N] [--top K]
  cspm client subscribe <session>      --socket <path> [--deadline-ms N] [--top K]
  cspm client stats [<session>]        --socket <path>
  cspm client metrics                  --socket <path>
  cspm client close <session>          --socket <path>

machine-readable output:
  --json               emit one JSON document on stdout (run statistics,
                       model summary, compression ratio, top patterns);
                       progress/ingest notes go to stderr

mine scheduling knobs (tune speed, never the mined model):
  --threads N          candidate-scoring worker threads (0 = auto, default)
  --full-regen-cap N   delegate --basic to the incremental policy past N
                       initial candidate pairs ('none' disables; default 10000)

durable sessions (crash-safe snapshot + delta WAL, docs/FORMATS.md):
  --store <path>       mine: persist the session at <path> — an empty store
                       is seeded from the given graph/--input and
                       checkpointed; a populated store warm-opens (the
                       input is then ignored) and re-mines the recovered
                       session. stats: report store health — file sizes,
                       generation, WAL records since the last checkpoint,
                       and how recovery went (clean / tail-truncated /
                       snapshot-fallback)

mining as a service (wire protocol: docs/FORMATS.md §7):
  serve                keep many named tenant sessions resident behind a
                       Unix socket speaking line-delimited JSON; under
                       --mem-budget pressure, fragmented tenants are
                       compacted and idle ones evicted LRU-first (durable
                       tenants checkpoint to --store-dir for warm re-open)
  client               one request per invocation: builds the JSON line,
                       prints the daemon's response line on stdout, and
                       exits nonzero when something fails — 1 when the
                       daemon answers \"ok\":false, 2 when the transport
                       fails (no daemon, dead socket, torn stream)
                       (delta reads the delta object from --file or stdin)
  client subscribe     like client mine, but streams one progress line
                       per accepted merge before the final response
  client metrics       prints the daemon's Prometheus text exposition
                       (engine, store, and serve metric families)

real datasets (requires a build with --features real-data):
  --input <dump>       ingest a real dataset dump; parsed graphs are cached
                       in a versioned <dump>.csbin snapshot (docs/FORMATS.md)
  --format <name>      pokec|dblp|usflight|native, or auto-detect (default)";

/// Observer for durable-session runs: mining runs to completion, and
/// recovery anomalies (truncated WAL tail, snapshot fallback, cold
/// database rebuilds) surface on stderr instead of vanishing.
struct WarnToStderr;

impl cspm::core::ProgressObserver for WarnToStderr {
    fn on_iteration(&mut self, _stat: &cspm::core::IterationStat) -> std::ops::ControlFlow<()> {
        std::ops::ControlFlow::Continue(())
    }

    fn on_warning(&mut self, message: &str) {
        eprintln!("store: warning: {message}");
    }
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("mine") => mine(&args[1..]),
        Some("stats") => stats(&args[1..]),
        Some("generate") => generate(&args[1..]),
        Some("verify") => verify(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some("client") => client(&args[1..]),
        Some(other) => Err(format!("unknown command '{other}'")),
        None => Err("missing command".into()),
    }
}

fn load(path: &str) -> Result<AttributedGraph, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    read_graph(file).map_err(|e| format!("cannot parse {path}: {e}"))
}

/// Ingests a real dataset dump (`mine --input`), reporting how the
/// `.csbin` snapshot cache behaved; `tests/cli.rs` asserts these lines.
/// Under `--json` the notes move to stderr so stdout stays one JSON
/// document.
#[cfg(feature = "real-data")]
fn ingest_input(dump: &str, format: &str, json: bool) -> Result<AttributedGraph, String> {
    use cspm::datasets::ingest::{self, SnapshotOutcome, SnapshotPolicy};

    let note = |line: String| {
        if json {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    };
    let format = ingest::Format::from_cli(format)?;
    let path = std::path::Path::new(dump);
    let report = ingest::ingest(path, format, SnapshotPolicy::ReadWrite)
        .map_err(|e| format!("cannot ingest {dump}: {e}"))?;
    let (n, m, a) = report.dataset.statistics();
    let shape = format!("{n} vertices, {m} edges, {a} attribute values");
    match &report.snapshot {
        SnapshotOutcome::Loaded { path: snap } => note(format!(
            "ingest: loaded snapshot {} ({shape}) in {:.3}s",
            snap.display(),
            report.snapshot_load_secs
        )),
        SnapshotOutcome::Written { path: snap, invalidated } => {
            if let Some(reason) = invalidated {
                note(format!("ingest: discarded unusable snapshot ({reason})"));
            }
            note(format!(
                "ingest: parsed {dump} as {} ({shape}) in {:.3}s; wrote snapshot {}",
                report.format,
                report.parse_secs,
                snap.display()
            ));
        }
        SnapshotOutcome::WriteFailed { path: snap, reason } => note(format!(
            "ingest: parsed {dump} as {} ({shape}) in {:.3}s; could not write snapshot {}: {reason}",
            report.format,
            report.parse_secs,
            snap.display()
        )),
        SnapshotOutcome::Disabled => {}
    }
    if report.self_loops_skipped > 0 {
        note(format!(
            "ingest: skipped {} self-loop record(s)",
            report.self_loops_skipped
        ));
    }
    note(format!(
        "dataset: {} [{}]",
        report.dataset.name, report.dataset.category
    ));
    Ok(report.dataset.graph)
}

#[cfg(not(feature = "real-data"))]
fn ingest_input(_dump: &str, _format: &str, _json: bool) -> Result<AttributedGraph, String> {
    Err(
        "this build has no real-dataset support (the real-data feature is off); \
         rebuild with `cargo build --features real-data`, or fall back to the \
         synthetic generators: `cspm generate <kind> <file>` then `cspm mine <file>`"
            .into(),
    )
}

fn mine(args: &[String]) -> Result<(), String> {
    let mut config = CspmConfig::default();
    let mut variant = Variant::Partial;
    let mut top = 20usize;
    let mut json = false;
    let mut graph_file: Option<&String> = None;
    let mut input: Option<&String> = None;
    let mut format: Option<String> = None;
    let mut store_path: Option<&String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--input" => {
                input = Some(it.next().ok_or("--input needs a dump path")?);
            }
            "--store" => {
                store_path = Some(it.next().ok_or("--store needs a file path")?);
            }
            "--format" => {
                format = Some(
                    it.next()
                        .ok_or("--format needs pokec|dblp|usflight|native|auto")?
                        .clone(),
                );
            }
            "--basic" => variant = Variant::Basic,
            "--data-only" => config.gain_policy = GainPolicy::DataOnly,
            "--top" => {
                top = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--top needs a number")?;
            }
            "--multi-core" => {
                config.coreset_mode = match it.next().map(String::as_str) {
                    Some("krimp") => CoresetMode::Krimp { min_support: 2 },
                    Some("slim") => CoresetMode::Slim,
                    _ => return Err("--multi-core needs 'krimp' or 'slim'".into()),
                };
            }
            "--threads" => {
                config.threads = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--threads needs a number (0 = auto)")?;
            }
            "--full-regen-cap" => {
                config.full_regen_max_pairs = match it.next().map(String::as_str) {
                    Some("none") => None,
                    Some(s) => Some(
                        s.parse()
                            .map_err(|_| "--full-regen-cap needs a number or 'none'")?,
                    ),
                    None => return Err("--full-regen-cap needs a number or 'none'".into()),
                };
            }
            other if !other.starts_with('-') && graph_file.is_none() => graph_file = Some(a),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if format.is_some() && input.is_none() {
        // A format flag on the plain-text path would be silently
        // ignored — the user almost certainly forgot --input.
        return Err("--format only applies to --input <dump>".into());
    }
    if graph_file.is_some() && input.is_some() {
        return Err("give either a graph file or --input <dump>, not both".into());
    }
    if let Some(store_path) = store_path {
        return mine_durable(
            store_path,
            graph_file,
            input,
            format.as_deref(),
            variant,
            config,
            top,
            json,
        );
    }
    let g = match (graph_file, input) {
        (Some(path), None) => load(path)?,
        (None, Some(dump)) => ingest_input(dump, format.as_deref().unwrap_or("auto"), json)?,
        _ => return Err("mine needs a graph file, --input <dump>, or --store <path>".into()),
    };
    // One-shot CLI run: `cspm::core::mine` is the session API's
    // detached wrapper (build → run, nothing cloned, nothing
    // retained) — the right shape for a process that exits afterwards.
    // Both paper variants are scheduling policies of the same session
    // engine.
    let result = cspm::core::mine(&g, variant, config);
    report_mine(&g, variant, &result, top, json, None);
    Ok(())
}

/// The `mine --store` path: the session lives at `store_path` instead
/// of being one-shot. An empty store is seeded from the given
/// graph/`--input` dump and checkpointed; a populated one warm-opens
/// (recovering through any WAL damage) and re-mines the recovered
/// session, ignoring any input argument.
#[allow(clippy::too_many_arguments)]
fn mine_durable(
    store_path: &str,
    graph_file: Option<&String>,
    input: Option<&String>,
    format: Option<&str>,
    variant: Variant,
    config: CspmConfig,
    top: usize,
    json: bool,
) -> Result<(), String> {
    use cspm::store::DurableSession;

    let note = |line: String| {
        if json {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    };
    let miner = cspm::core::Miner::from_config(config).variant(variant);
    let mut durable = DurableSession::open_with(miner, store_path, &mut WarnToStderr)
        .map_err(|e| format!("cannot open store {store_path}: {e}"))?;

    let (g, result) = if let Some(g) = durable.session().graph().cloned() {
        if graph_file.is_some() || input.is_some() {
            note(format!(
                "store: input ignored — {store_path} already holds a session"
            ));
        }
        note(format!(
            "store: warm-opened {store_path} (generation {}, {})",
            durable.store().generation(),
            durable.recovery()
        ));
        if let Some(reason) = durable.db_rebuilt() {
            note(format!("store: database rebuilt cold ({reason})"));
        }
        let result = durable
            .run_with(&mut WarnToStderr)
            .map_err(|e| format!("cannot mine stored session: {e}"))?;
        // Replayed WAL records (and cold rebuilds) fold into a fresh
        // snapshot so the next open is both warm and replay-free.
        if durable.store().wal_records() > 0 || durable.db_rebuilt().is_some() {
            durable
                .checkpoint()
                .map_err(|e| format!("cannot checkpoint {store_path}: {e}"))?;
            note(format!(
                "store: folded recovered state into generation {}",
                durable.store().generation()
            ));
        }
        (g, result)
    } else {
        let g = match (graph_file, input) {
            (Some(path), None) => load(path)?,
            (None, Some(dump)) => ingest_input(dump, format.unwrap_or("auto"), json)?,
            _ => {
                return Err(format!(
                    "store {store_path} is empty; seed it with a graph file or --input <dump>"
                ))
            }
        };
        let result = durable
            .mine_with(&g, &mut WarnToStderr)
            .map_err(|e| format!("cannot persist to {store_path}: {e}"))?;
        note(format!(
            "store: seeded {store_path} (generation {})",
            durable.store().generation()
        ));
        (g, result)
    };
    report_mine(&g, variant, &result, top, json, Some(&durable));
    Ok(())
}

/// Shared tail of every `mine` invocation: the JSON document or the
/// human-readable report. `durable` adds the `"store"` object under
/// `--json` so scripted callers can read generation/recovery state off
/// the same document.
fn report_mine(
    g: &AttributedGraph,
    variant: Variant,
    result: &CspmResult,
    top: usize,
    json: bool,
    durable: Option<&cspm::store::DurableSession>,
) {
    if json {
        println!("{}", mine_json(g, variant, result, top, durable));
        return;
    }
    if result.stats.delegated {
        println!(
            "note: full regeneration delegated to the incremental policy \
             (initial candidate pairs exceeded --full-regen-cap)"
        );
    }
    println!(
        "mined {} a-stars in {} merges; DL {:.1} -> {:.1} bits (ratio {:.3})",
        result.model.len(),
        result.merges,
        result.initial_dl,
        result.final_dl,
        result.compression_ratio()
    );
    println!("{}", ModelSummary::new(&result.db, &result.model));
    println!("\ntop {top} patterns:");
    print!("{}", result.model.format_top(g.attrs(), top));
}

/// The `mine --json` document: graph shape, `RunStats`, `ModelSummary`
/// (with the compression ratio), and the top `top` patterns. One JSON
/// object on a single line; shape asserted by `tests/cli.rs` and
/// validated end-to-end by the CI `real-data` job. A durable run adds
/// a `"store"` object (generation, WAL position, recovery outcome).
fn mine_json(
    g: &AttributedGraph,
    variant: Variant,
    result: &CspmResult,
    top: usize,
    durable: Option<&cspm::store::DurableSession>,
) -> String {
    let summary = ModelSummary::new(&result.db, &result.model);
    let mut j = Json::new();
    j.begin_obj();
    j.field_str("command", "mine");
    j.field_str(
        "variant",
        match variant {
            Variant::Basic => "basic",
            Variant::Partial => "partial",
        },
    );
    graph_json(&mut j, g);
    if let Some(d) = durable {
        store_json(
            &mut j,
            d.store().path(),
            d.stats(),
            d.recovery(),
            d.db_rebuilt(),
        );
    }
    j.begin_obj_field("run")
        .field_num("initial_dl_bits", result.initial_dl)
        .field_num("final_dl_bits", result.final_dl)
        .field_str("final_dl_hex", &cspm::serve::dl_bits(result.final_dl))
        .field_num("compression_ratio", result.compression_ratio())
        .field_int("merges", result.merges as u64)
        .field_int("total_gain_evals", result.stats.total_gain_evals)
        .field_int("pruned_pairs", result.stats.pruned_pairs)
        .field_bool("delegated", result.stats.delegated)
        .field_bool("cancelled", result.stats.cancelled)
        .field_num("elapsed_secs", result.stats.elapsed_secs)
        .field_int(
            "posting_sparse_rows",
            result.stats.posting.sparse_rows as u64,
        )
        .field_int(
            "posting_bitmap_rows",
            result.stats.posting.bitmap_rows as u64,
        )
        .field_int(
            "posting_flips_to_bitmap",
            result.stats.posting.flips_to_bitmap,
        )
        .field_int(
            "posting_flips_to_sparse",
            result.stats.posting.flips_to_sparse,
        )
        .end_obj();
    j.begin_obj_field("model")
        .field_int("n_astars", summary.n_astars as u64)
        .field_int("n_coresets", summary.n_coresets as u64)
        .field_int("n_leafsets", summary.n_leafsets as u64)
        .field_num("mean_leafset_size", summary.mean_leafset_size)
        .field_int("max_leafset_size", summary.max_leafset_size as u64)
        .field_int("merged_rows", summary.merged_rows as u64)
        .field_num("data_bits", summary.data_bits)
        .field_num("model_bits", summary.model_bits)
        .field_num("total_bits", summary.total_bits())
        .field_num("conditional_entropy", summary.conditional_entropy)
        .end_obj();
    j.begin_arr_field("top_patterns");
    for m in result.model.astars().iter().take(top) {
        j.begin_obj()
            .field_str("astar", &m.astar.display(g.attrs()).to_string())
            .field_int("frequency", m.frequency)
            .field_int("coreset_frequency", m.coreset_freq)
            .field_num("code_len_bits", m.code_len)
            .end_obj();
    }
    j.end_arr();
    j.end_obj();
    j.finish()
}

/// Shared `"graph": {…}` fragment of the JSON documents.
fn graph_json(j: &mut Json, g: &AttributedGraph) {
    j.begin_obj_field("graph")
        .field_int("vertices", g.vertex_count() as u64)
        .field_int("edges", g.edge_count() as u64)
        .field_int("attribute_values", g.attr_count() as u64)
        .end_obj();
}

/// Shared `"store": {…}` fragment: file sizes, checkpoint generation,
/// WAL records since the last checkpoint, and the recovery outcome of
/// the open that produced these numbers.
fn store_json(
    j: &mut Json,
    path: &std::path::Path,
    stats: cspm::store::StoreStats,
    recovery: &cspm::store::RecoveryOutcome,
    db_rebuilt: Option<&str>,
) {
    let b = j
        .begin_obj_field("store")
        .field_str("path", &path.display().to_string())
        .field_int("snapshot_bytes", stats.snapshot_bytes)
        .field_int("wal_bytes", stats.wal_bytes)
        .field_int("generation", stats.generation)
        .field_int("wal_records", stats.wal_records as u64)
        .field_str("recovery", recovery.label())
        .field_str("recovery_detail", &recovery.to_string());
    if let Some(reason) = db_rebuilt {
        b.field_str("db_rebuilt", reason);
    }
    b.end_obj();
}

fn stats(args: &[String]) -> Result<(), String> {
    let mut json = false;
    let mut path: Option<&String> = None;
    let mut store_path: Option<&String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--store" => {
                store_path = Some(it.next().ok_or("--store needs a file path")?);
            }
            other if !other.starts_with('-') && path.is_none() => path = Some(a),
            other if other.starts_with('-') => return Err(format!("unknown flag '{other}'")),
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    if let Some(store_path) = store_path {
        if path.is_some() {
            return Err("give either a graph file or --store <path>, not both".into());
        }
        return stats_store(store_path, json);
    }
    let path = path.ok_or("stats needs a graph file or --store <path>")?;
    let g = load(path)?;
    if json {
        println!("{}", stats_json(&g));
        return Ok(());
    }
    println!(
        "vertices: {}, edges: {}, attribute values: {}",
        g.vertex_count(),
        g.edge_count(),
        g.attr_count()
    );
    println!(
        "connected: {}, components: {}",
        g.is_connected(),
        g.component_count()
    );
    if let Some(d) = metrics::degree_stats(&g) {
        println!("degree: min {} / mean {:.2} / max {}", d.min, d.mean, d.max);
    }
    println!(
        "mean labels/vertex: {:.2}, attribute homophily: {:.3}, mean clustering: {:.3}",
        g.mean_labels_per_vertex(),
        metrics::attribute_homophily(&g),
        metrics::mean_clustering(&g)
    );
    println!("most frequent attribute values:");
    for (a, count) in metrics::attribute_histogram(&g).into_iter().take(10) {
        println!("  {:<24} {count}", g.attrs().name(a).unwrap_or("?"));
    }
    Ok(())
}

/// The `stats --store` path: store health instead of graph structure.
/// Opens the store read-only-in-spirit (recovery may physically trim a
/// torn WAL tail, exactly as a mine would) and reports file sizes,
/// generation, WAL position, how recovery went, and the shape of the
/// recovered graph.
fn stats_store(store_path: &str, json: bool) -> Result<(), String> {
    use cspm::store::{RecoveryOutcome, SessionStore};

    let (store, recovered) = SessionStore::open(store_path)
        .map_err(|e| format!("cannot open store {store_path}: {e}"))?;
    let s = store.stats();
    let state = recovered.state.as_ref();
    let mode = state.and_then(|st| {
        st.mode.map(|m| match m {
            CoresetMode::SingleValue => "single-value".to_string(),
            CoresetMode::Krimp { min_support } => format!("krimp(min_support={min_support})"),
            CoresetMode::Slim => "slim".to_string(),
        })
    });
    let gain = state.and_then(|st| {
        st.gain.map(|g| match g {
            GainPolicy::Total => "total",
            GainPolicy::DataOnly => "data-only",
        })
    });
    if json {
        let mut j = Json::new();
        j.begin_obj();
        j.field_str("command", "stats");
        store_json(
            &mut j,
            store.path(),
            s,
            &recovered.outcome,
            state.and_then(|st| st.db_note.as_deref()),
        );
        if let Some(st) = state {
            graph_json(&mut j, &st.graph);
            if let Some(mode) = &mode {
                j.field_str("coreset_mode", mode);
            }
            if let Some(gain) = gain {
                j.field_str("gain_policy", gain);
            }
            j.field_bool("db_section", st.db.is_some());
            if let Some(db) = &st.db {
                j.field_int("db_rows", db.row_count() as u64);
            }
        }
        j.end_obj();
        println!("{}", j.finish());
        return Ok(());
    }
    println!("store: {}", store.path().display());
    println!(
        "snapshot: {} bytes (generation {})",
        s.snapshot_bytes, s.generation
    );
    println!(
        "wal: {} bytes, {} record(s) since last checkpoint",
        s.wal_bytes, s.wal_records
    );
    match &recovered.outcome {
        o @ (RecoveryOutcome::Fresh | RecoveryOutcome::Clean { .. }) => {
            println!("recovery: {}", o.label());
        }
        o => println!("recovery: {} — {o}", o.label()),
    }
    match state {
        Some(st) => {
            println!(
                "graph: {} vertices, {} edges, {} attribute values \
                 (+{} WAL delta(s) to replay)",
                st.graph.vertex_count(),
                st.graph.edge_count(),
                st.graph.attr_count(),
                st.deltas.len()
            );
            if let (Some(mode), Some(gain)) = (&mode, gain) {
                println!("config: coreset mode {mode}, gain policy {gain}");
            }
            match &st.db {
                Some(db) => println!("database: {} serialized row(s)", db.row_count()),
                None => {
                    let why = st
                        .db_note
                        .as_deref()
                        .unwrap_or("none serialized for this configuration");
                    println!("database: cold rebuild on open ({why})");
                }
            }
        }
        None if matches!(recovered.outcome, RecoveryOutcome::Fresh) => {
            println!("graph: none — the store has never been checkpointed");
        }
        None => {
            println!("graph: unrecoverable — the next successful mine re-seeds the store");
        }
    }
    Ok(())
}

/// The `stats --json` document: graph shape plus the structural
/// metrics the human-readable listing shows.
fn stats_json(g: &AttributedGraph) -> String {
    let mut j = Json::new();
    j.begin_obj();
    j.field_str("command", "stats");
    graph_json(&mut j, g);
    j.field_bool("connected", g.is_connected());
    j.field_int("components", g.component_count() as u64);
    if let Some(d) = metrics::degree_stats(g) {
        j.begin_obj_field("degree")
            .field_int("min", d.min as u64)
            .field_num("mean", d.mean)
            .field_int("max", d.max as u64)
            .end_obj();
    }
    j.field_num("mean_labels_per_vertex", g.mean_labels_per_vertex());
    j.field_num("attribute_homophily", metrics::attribute_homophily(g));
    j.field_num("mean_clustering", metrics::mean_clustering(g));
    // Posting-row representation mix of the pristine inverted database:
    // how many rows the adaptive density thresholds send to bitmaps on
    // this dataset, before any merge traffic.
    let db = cspm::core::InvertedDb::build(g, CoresetMode::SingleValue, GainPolicy::Total);
    let p = db.posting_store().repr_stats();
    j.begin_obj_field("posting")
        .field_int("sparse_rows", p.sparse_rows as u64)
        .field_int("bitmap_rows", p.bitmap_rows as u64)
        .end_obj();
    j.begin_arr_field("top_attribute_values");
    for (a, count) in metrics::attribute_histogram(g).into_iter().take(10) {
        j.begin_obj()
            .field_str("value", g.attrs().name(a).unwrap_or("?"))
            .field_int("count", count as u64)
            .end_obj();
    }
    j.end_arr();
    j.end_obj();
    j.finish()
}

fn generate(args: &[String]) -> Result<(), String> {
    let kind = args.first().ok_or("generate needs a dataset kind")?;
    let out = args.get(1).ok_or("generate needs an output file")?;
    let mut scale = Scale::Small;
    let mut seed = 2022u64;
    let mut it = args[2..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = match it.next().map(String::as_str) {
                    Some("tiny") => Scale::Tiny,
                    Some("small") => Scale::Small,
                    Some("paper") => Scale::Paper,
                    _ => return Err("--scale needs tiny|small|paper".into()),
                };
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--seed needs a number")?;
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    let dataset = match kind.as_str() {
        "dblp" => dblp_like(scale, seed),
        "dblp-trend" => dblp_trend_like(scale, seed),
        "usflight" => usflight_like(scale, seed),
        "pokec" => pokec_like(scale, seed),
        other => return Err(format!("unknown dataset '{other}'")),
    };
    save_dataset(&dataset, std::path::Path::new(out))
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    let (n, m, a) = dataset.statistics();
    println!(
        "wrote {} ({n} vertices, {m} edges, {a} attribute values) to {out}",
        dataset.name
    );
    Ok(())
}

fn verify(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("verify needs a graph file")?;
    let g = load(path)?;
    g.validate()
        .map_err(|e| format!("input constraint violated: {e}"))?;
    let result = cspm::core::mine(&g, Variant::Partial, CspmConfig::default());
    let errors = verify_lossless(&g, &result.db);
    if errors.is_empty() {
        println!(
            "ok: model of {} a-stars decodes the graph losslessly (DL ratio {:.3})",
            result.model.len(),
            result.compression_ratio()
        );
        Ok(())
    } else {
        Err(format!(
            "lossless verification failed with {} errors",
            errors.len()
        ))
    }
}

/// `cspm serve`: run the multi-tenant mining daemon in the foreground
/// until SIGTERM/SIGINT, then drain connections, checkpoint durable
/// tenants, and remove the socket file (exit 0).
fn serve(args: &[String]) -> Result<(), String> {
    let mut socket: Option<String> = None;
    let mut config_rest = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--socket" => socket = Some(value("--socket")?),
            "--store-dir" => config_rest.push(("store-dir", value("--store-dir")?)),
            "--threads" => config_rest.push(("threads", value("--threads")?)),
            "--mem-budget" => config_rest.push(("mem-budget", value("--mem-budget")?)),
            "--compact-above" => config_rest.push(("compact-above", value("--compact-above")?)),
            other => return Err(format!("unknown serve flag '{other}'")),
        }
    }
    let socket = socket.ok_or("serve needs --socket <path>")?;
    let mut config = cspm::serve::ServerConfig::new(&socket);
    for (flag, raw) in config_rest {
        match flag {
            "store-dir" => config.store_dir = Some(raw.into()),
            "threads" => {
                config.threads = raw
                    .parse()
                    .map_err(|_| format!("--threads must be an integer, got '{raw}'"))?;
            }
            "mem-budget" => {
                config.mem_budget = Some(
                    raw.parse()
                        .map_err(|_| format!("--mem-budget must be bytes, got '{raw}'"))?,
                );
            }
            "compact-above" => {
                config.compact_above = raw
                    .parse()
                    .map_err(|_| format!("--compact-above must be a number, got '{raw}'"))?;
            }
            _ => unreachable!(),
        }
    }
    eprintln!("serve: listening on {socket}");
    cspm::serve::Server::run_until_signalled(config).map_err(|e| format!("serve: {e}"))
}

/// `cspm client`: one request per invocation. Builds the JSON request
/// line locally (validating deltas client-side with the same decoder
/// the daemon uses), sends it over the Unix socket, prints the
/// daemon's response on stdout, and exits nonzero when something
/// fails, with distinct codes so pipelines can tell the failure domains
/// apart: **1** when the daemon answered `"ok":false` (a server-side
/// refusal — the typed error line is on stdout), **2** when the
/// transport failed (no daemon, dead socket, torn or non-JSON stream).
/// Argument mistakes stay ordinary usage errors (code 1 with the usage
/// banner). `subscribe` streams progress lines until the terminal
/// line; `metrics` unwraps the exposition text and prints it raw.
fn client(args: &[String]) -> Result<(), String> {
    use cspm::serve::json::Value;

    let op = args
        .first()
        .ok_or("client needs an op: ping|open|delta|mine|subscribe|stats|metrics|close|shutdown")?
        .as_str();
    let mut socket: Option<String> = None;
    let mut session: Option<String> = None;
    let mut graph_file: Option<String> = None;
    let mut delta_file: Option<String> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut top: Option<u64> = None;
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--socket" => socket = Some(value("--socket")?),
            "--graph" => graph_file = Some(value("--graph")?),
            "--file" => delta_file = Some(value("--file")?),
            "--deadline-ms" => {
                let raw = value("--deadline-ms")?;
                deadline_ms = Some(
                    raw.parse()
                        .map_err(|_| format!("--deadline-ms must be an integer, got '{raw}'"))?,
                );
            }
            "--top" => {
                let raw = value("--top")?;
                top = Some(
                    raw.parse()
                        .map_err(|_| format!("--top must be an integer, got '{raw}'"))?,
                );
            }
            other if !other.starts_with('-') && session.is_none() => {
                session = Some(other.to_string());
            }
            other => return Err(format!("unknown client flag '{other}'")),
        }
    }
    let socket = socket.ok_or("client needs --socket <path>")?;

    let mut fields: Vec<(String, Value)> = vec![("op".into(), Value::Str(op.into()))];
    let need_session = || {
        session
            .clone()
            .ok_or_else(|| format!("client {op} needs a session name"))
    };
    match op {
        "ping" | "shutdown" | "metrics" => {}
        "open" => {
            fields.push(("session".into(), Value::Str(need_session()?)));
            if let Some(path) = &graph_file {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                fields.push(("graph".into(), Value::Str(text)));
            }
        }
        "delta" => {
            fields.push(("session".into(), Value::Str(need_session()?)));
            let text = match &delta_file {
                Some(path) => {
                    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?
                }
                None => {
                    use std::io::Read as _;
                    let mut buf = String::new();
                    std::io::stdin()
                        .read_to_string(&mut buf)
                        .map_err(|e| format!("cannot read delta from stdin: {e}"))?;
                    buf
                }
            };
            let delta = cspm::serve::json::parse(text.trim())
                .map_err(|e| format!("delta is not valid JSON: {e}"))?;
            // Fail fast with the daemon's own decoder before burning a
            // round-trip on a delta the server would reject anyway.
            cspm::serve::proto::delta_from_value(&delta)
                .map_err(|e| format!("invalid delta: {}", e.message))?;
            // The wire format carries the delta fields at the request's
            // top level (docs/FORMATS.md §7), so splice them in.
            match delta {
                Value::Obj(pairs) => {
                    for (key, val) in pairs {
                        if key == "op" || key == "session" {
                            return Err(format!("delta object must not contain a '{key}' key"));
                        }
                        fields.push((key, val));
                    }
                }
                _ => return Err("delta must be a JSON object".into()),
            }
        }
        "mine" | "subscribe" => {
            fields.push(("session".into(), Value::Str(need_session()?)));
            if let Some(ms) = deadline_ms {
                fields.push(("deadline_ms".into(), Value::Num(ms as f64)));
            }
            if let Some(k) = top {
                fields.push(("top".into(), Value::Num(k as f64)));
            }
        }
        "stats" => {
            if let Some(name) = &session {
                fields.push(("session".into(), Value::Str(name.clone())));
            }
        }
        "close" => fields.push(("session".into(), Value::Str(need_session()?))),
        other => return Err(format!("unknown client op '{other}'")),
    }

    let request = Value::Obj(fields).to_json();
    if op == "subscribe" {
        return client_subscribe(&socket, &request);
    }
    let response = match client_round_trip(&socket, &request) {
        Ok(r) => r,
        Err(msg) => transport_failed(&msg),
    };
    // Daemon-side refusals are not CLI-usage mistakes: report them on
    // stderr and exit 1 without re-printing the usage banner (the typed
    // error line is already on stdout for scripts to parse). A daemon
    // that answers gibberish is a transport failure: exit 2.
    match cspm::serve::json::parse(&response) {
        Ok(v) if v.get("ok").and_then(Value::as_bool) == Some(true) => {
            if op == "metrics" {
                if let Some(text) = v.get("text").and_then(Value::as_str) {
                    print!("{text}");
                    return Ok(());
                }
            }
            println!("{response}");
            Ok(())
        }
        Ok(v) => {
            println!("{response}");
            daemon_refused(&v);
        }
        Err(e) => transport_failed(&format!("daemon sent invalid JSON: {e}")),
    }
}

/// Transport failure (no daemon, dead socket, torn or non-JSON
/// stream): report on stderr and exit 2 — distinct from both usage
/// errors and daemon-side refusals.
fn transport_failed(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// Server-side refusal (`"ok":false` on the wire): report the typed
/// error on stderr and exit 1. The response line is already on stdout.
fn daemon_refused(v: &cspm::serve::json::Value) -> ! {
    use cspm::serve::json::Value;
    let (code, message) = match v.get("error") {
        Some(err) => (
            err.get("code").and_then(Value::as_str).unwrap_or("?"),
            err.get("message").and_then(Value::as_str).unwrap_or(""),
        ),
        None => ("?", ""),
    };
    eprintln!("error: daemon refused: {code}: {message}");
    std::process::exit(1);
}

/// `cspm client subscribe`: stream the progress events of one mine as
/// they happen, line by line, then the terminal line. Exit codes match
/// the single-shot path: 1 when the terminal line is a refusal, 2 when
/// the transport dies mid-stream.
fn client_subscribe(socket: &str, request: &str) -> Result<(), String> {
    use cspm::serve::json::Value;
    use std::io::{BufRead as _, BufReader, Write as _};
    use std::os::unix::net::UnixStream;
    use std::time::Duration;

    let connect = || -> Result<UnixStream, String> {
        let stream = UnixStream::connect(socket)
            .map_err(|e| format!("cannot connect to {socket}: {e} (is the daemon running?)"))?;
        stream
            .set_read_timeout(Some(Duration::from_secs(600)))
            .and_then(|()| stream.set_write_timeout(Some(Duration::from_secs(30))))
            .map_err(|e| format!("cannot set socket timeouts: {e}"))?;
        Ok(stream)
    };
    let stream = match connect() {
        Ok(s) => s,
        Err(msg) => transport_failed(&msg),
    };
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(e) => transport_failed(&format!("cannot clone socket: {e}")),
    };
    if let Err(e) = writer
        .write_all(request.as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
    {
        transport_failed(&format!("cannot send request: {e}"));
    }
    let mut reader = BufReader::new(stream);
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => transport_failed("daemon closed the connection mid-stream"),
            Ok(_) => {}
            Err(e) => transport_failed(&format!("cannot read stream: {e}")),
        }
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        println!("{line}");
        match cspm::serve::json::parse(line) {
            Ok(v) => {
                if v.get("ok").and_then(Value::as_bool) != Some(true) {
                    daemon_refused(&v);
                }
                if v.get("event").and_then(Value::as_str) == Some("done") {
                    return Ok(());
                }
            }
            Err(e) => transport_failed(&format!("daemon sent invalid JSON: {e}")),
        }
    }
}

/// Send one request line, read one response line. Timeouts keep a dead
/// daemon from hanging the CLI forever.
fn client_round_trip(socket: &str, request: &str) -> Result<String, String> {
    use std::io::{BufRead as _, BufReader, Write as _};
    use std::os::unix::net::UnixStream;
    use std::time::Duration;

    let stream = UnixStream::connect(socket)
        .map_err(|e| format!("cannot connect to {socket}: {e} (is the daemon running?)"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(600)))
        .and_then(|()| stream.set_write_timeout(Some(Duration::from_secs(30))))
        .map_err(|e| format!("cannot set socket timeouts: {e}"))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("cannot clone socket: {e}"))?;
    writer
        .write_all(request.as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .map_err(|e| format!("cannot send request: {e}"))?;
    let mut line = String::new();
    BufReader::new(stream)
        .read_line(&mut line)
        .map_err(|e| format!("cannot read response: {e}"))?;
    if line.is_empty() {
        return Err("daemon closed the connection without responding".into());
    }
    Ok(line.trim_end().to_string())
}
