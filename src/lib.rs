//! # CSPM — Compressing Star Pattern Miner
//!
//! A complete Rust reproduction of *"Discovering Representative
//! Attribute-stars via Minimum Description Length"* (Liu, Zhou,
//! Fournier-Viger, Yang, Pan, Nouioua — ICDE 2022).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`graph`] | `cspm-graph` | attributed graphs, stars, a-stars, I/O |
//! | [`mdl`] | `cspm-mdl` | code tables, entropy, universal codes |
//! | [`itemset`] | `cspm-itemset` | transactions, Eclat, Krimp, SLIM |
//! | [`core`] | `cspm-core` | the CSPM mining engine: flat posting store, candidate scheduler, Basic/Partial policies |
//! | [`datasets`] | `cspm-datasets` | seeded benchmark generators |
//! | [`nn`] | `cspm-nn` | minimal neural-network substrate |
//! | [`completion`] | `cspm-completion` | node attribute completion (Table IV) |
//! | [`alarm`] | `cspm-alarm` | telecom alarm correlation (Fig. 8) + compression |
//! | [`classify`] | `cspm-classify` | graph classification with a-star features (future work §VII) |
//! | [`serve`] | `cspm-serve` | multi-tenant mining daemon: line-JSON protocol, registry, eviction |
//! | [`store`] | `cspm-store` | durable sessions: snapshot + delta WAL, fault injection |
//! | [`telemetry`] | `cspm-telemetry` | lock-free metrics registry + Prometheus exposition |
//!
//! ## Quickstart
//!
//! ```
//! use cspm::core::{cspm_partial, CspmConfig};
//! use cspm::graph::GraphBuilder;
//!
//! // A toy social network: smokers' friends tend to smoke.
//! let mut b = GraphBuilder::new();
//! let mut prev = None;
//! for _ in 0..8 {
//!     let hub = b.add_vertex(["smoker"]);
//!     let friend = b.add_vertex(["smoker", "runner"]);
//!     b.add_edge(hub, friend).unwrap();
//!     if let Some(p) = prev {
//!         b.add_edge(p, hub).unwrap();
//!     }
//!     prev = Some(hub);
//! }
//! let g = b.build().unwrap();
//!
//! // Parameter-free mining: the model is the set of a-stars that best
//! // compress the graph.
//! let result = cspm_partial(&g, CspmConfig::default());
//! assert!(result.final_dl <= result.initial_dl);
//! for pattern in result.model.astars().iter().take(5) {
//!     println!("{}  ({:.2} bits)", pattern.astar.display(g.attrs()), pattern.code_len);
//! }
//! ```

pub use cspm_alarm as alarm;
pub use cspm_classify as classify;
pub use cspm_completion as completion;
pub use cspm_core as core;
pub use cspm_datasets as datasets;
pub use cspm_graph as graph;
pub use cspm_itemset as itemset;
pub use cspm_mdl as mdl;
pub use cspm_nn as nn;
pub use cspm_serve as serve;
pub use cspm_store as store;
pub use cspm_telemetry as telemetry;
